package harness

// X7 measures the serving envelope under load: a live HTTP server with
// admission control configured, hammered by a worker pool issuing hot,
// zipf, and cold query mixes at two offered concurrencies — one inside
// the configured in-flight limit and one far beyond it. Inside the
// limit the envelope must be invisible (zero rejections); beyond it the
// server must degrade by stating backpressure — 429 with a Retry-After
// header — while the requests it does admit keep their latency, instead
// of queueing everything into collapse. The experiment asserts its SLOs
// in-line and fails rather than render a table for a server that hung,
// dropped the Retry-After advertisement, or mis-answered under pressure.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"pitract/internal/core"
	"pitract/internal/graph"
	"pitract/internal/schemes"
	"pitract/internal/server"
	"pitract/internal/store"
)

// x7ServiceFloor is the controlled per-answer service time of the load
// workload. A load generator needs the in-handler window to dominate the
// request lifecycle, or saturation (and so the backpressure SLO) depends
// on scheduler luck: the BFS answers alone are microseconds while the
// localhost HTTP round trip is hundreds, so offered concurrency would
// melt before it reached the admission gate. The floor models the paper's
// regime honestly — answering is NC-cheap but not free at 10^15 bytes —
// and makes "overload admits at most cap × service-rate" arithmetic, not
// chance.
const x7ServiceFloor = 2 * time.Millisecond

// x7Scheme wraps the BFS-per-query reachability scheme with the service
// floor. Verdicts and errors are the wrapped scheme's, byte for byte, so
// the differential check against the raw store still holds.
func x7Scheme() *core.Scheme {
	base := schemes.ReachabilityBFSScheme()
	return &core.Scheme{
		SchemeName: base.SchemeName,
		Preprocess: base.Preprocess,
		Answer: func(pd, q []byte) (bool, error) {
			time.Sleep(x7ServiceFloor)
			return base.Answer(pd, q)
		},
		PreprocessNote: base.PreprocessNote,
		AnswerNote:     base.AnswerNote + " + fixed service floor",
	}
}

// x7HangBound is the zero-hangs SLO: no request — admitted or rejected —
// may take longer than this end to end. It is deliberately generous (the
// envelope's job is to keep the tail bounded, not small on a loaded CI
// host), and a violation fails the experiment.
const x7HangBound = 10 * time.Second

// x7Result is one request's outcome as the load generator saw it.
type x7Result struct {
	latency    time.Duration
	admitted   bool
	retryAfter bool // a 429 carried a Retry-After header
	answer     bool
	queryIdx   int
}

// x7Row is one measured (mix, load level) cell.
type x7Row struct {
	mix       string
	workers   int
	inFlight  int // configured MaxInFlight (0 = unlimited)
	requests  int
	admitted  int
	rejected  int
	latencies []time.Duration // admitted requests only, unsorted
}

// x7Percentile returns the q-quantile (0 < q <= 1) of sorted latencies.
func x7Percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// x7Measure runs the load experiment and returns the measured rows.
func x7Measure(s Scale) ([]x7Row, error) {
	requestsPerWorker := 24
	universeSize := 256
	if s == Full {
		requestsPerWorker = 64
		universeSize = 1024
	}
	n := 96
	g := graph.CommunityGraph(6, n/6, n/2, int64(n))

	reg := store.NewRegistry("")
	srv := server.New(reg, nil)
	const inFlightCap = 2
	srv.SetLimits(server.Limits{
		MaxInFlight: inFlightCap,
		RetryAfter:  time.Second,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("X7: listen: %w", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	const id = "x7-graph"
	if _, err := reg.Register(id, x7Scheme(), g.Encode()); err != nil {
		return nil, fmt.Errorf("X7: register: %w", err)
	}

	// The query universe, with ground truth from the unwrapped BFS scheme
	// (identical verdicts without the service floor) to check admitted
	// responses against.
	truth := schemes.ReachabilityBFSScheme()
	prep, err := truth.Preprocess(g.Encode())
	if err != nil {
		return nil, fmt.Errorf("X7: ground-truth preprocess: %w", err)
	}
	rng := rand.New(rand.NewSource(int64(n) + 71))
	universe := make([][]byte, universeSize)
	expect := make([]bool, universeSize)
	for i := range universe {
		universe[i] = schemes.NodePairQuery(rng.Intn(g.N()), rng.Intn(g.N()))
		if expect[i], err = truth.Answer(prep, universe[i]); err != nil {
			return nil, fmt.Errorf("X7: ground truth: %w", err)
		}
	}
	zipf := rand.NewZipf(rng, 1.4, 4, uint64(universeSize-1))

	var rows []x7Row
	// Load levels: "within" offers at most the in-flight cap, so the
	// envelope must stay invisible; "overload" offers an order of
	// magnitude more, so backpressure must appear.
	for _, level := range []struct {
		name    string
		workers int
	}{
		{"within", inFlightCap},
		{"overload", 12 * inFlightCap},
	} {
		for _, mix := range []string{"hot", "zipf", "cold"} {
			// Per-worker request scripts, drawn up front so the workers
			// spend their time requesting, not sampling.
			scripts := make([][]int, level.workers)
			next := 0
			for w := range scripts {
				scripts[w] = make([]int, requestsPerWorker)
				for i := range scripts[w] {
					switch mix {
					case "hot":
						scripts[w][i] = 0
					case "zipf":
						scripts[w][i] = int(zipf.Uint64())
					default:
						scripts[w][i] = next % universeSize
						next++
					}
				}
			}

			client := &http.Client{
				Timeout:   x7HangBound,
				Transport: &http.Transport{MaxIdleConnsPerHost: level.workers + 1},
			}
			results := make([][]x7Result, level.workers)
			start := make(chan struct{})
			var wg sync.WaitGroup
			var workerErr error
			var errOnce sync.Once
			for w := range scripts {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					<-start
					out := make([]x7Result, 0, requestsPerWorker)
					for _, qi := range scripts[w] {
						res, err := x7Post(client, base, id, universe[qi], qi)
						if err != nil {
							errOnce.Do(func() { workerErr = err })
							return
						}
						out = append(out, res)
					}
					results[w] = out
				}(w)
			}
			close(start)
			wg.Wait()
			client.CloseIdleConnections()
			if workerErr != nil {
				return nil, fmt.Errorf("X7: %s/%s: %w", level.name, mix, workerErr)
			}

			row := x7Row{mix: mix, workers: level.workers, inFlight: inFlightCap}
			for _, rs := range results {
				for _, r := range rs {
					row.requests++
					if r.latency > x7HangBound {
						return nil, fmt.Errorf("X7: %s/%s: request hung %.1fs (bound %s)",
							level.name, mix, r.latency.Seconds(), x7HangBound)
					}
					if !r.admitted {
						row.rejected++
						if !r.retryAfter {
							return nil, fmt.Errorf("X7: %s/%s: a 429 arrived without Retry-After",
								level.name, mix)
						}
						continue
					}
					row.admitted++
					row.latencies = append(row.latencies, r.latency)
					if r.answer != expect[r.queryIdx] {
						return nil, fmt.Errorf("X7: %s/%s: query %d diverged under load (got %v, want %v)",
							level.name, mix, r.queryIdx, r.answer, expect[r.queryIdx])
					}
				}
			}
			if level.name == "within" && row.rejected > 0 {
				return nil, fmt.Errorf("X7: within/%s: %d rejections with offered concurrency %d <= cap %d",
					mix, row.rejected, level.workers, inFlightCap)
			}
			if level.name == "overload" && row.admitted == 0 {
				return nil, fmt.Errorf("X7: overload/%s: envelope admitted nothing", mix)
			}
			if level.name == "overload" && row.rejected == 0 {
				return nil, fmt.Errorf("X7: overload/%s: no backpressure at offered concurrency %d over cap %d",
					mix, level.workers, inFlightCap)
			}
			rows = append(rows, row)
		}
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	err = srv.Shutdown(shutdownCtx)
	cancel()
	if err != nil {
		return nil, fmt.Errorf("X7: shutdown: %w", err)
	}
	if err := <-serveErr; err != nil {
		return nil, fmt.Errorf("X7: serve: %w", err)
	}
	return rows, nil
}

// x7Post issues one query and classifies the outcome: 200 is admitted,
// 429 is backpressure (recording whether Retry-After rode along), and
// anything else is an experiment failure.
func x7Post(client *http.Client, base, dataset string, query []byte, queryIdx int) (x7Result, error) {
	body, err := json.Marshal(server.QueryRequest{Dataset: dataset, Query: query})
	if err != nil {
		return x7Result{}, err
	}
	start := time.Now()
	resp, err := client.Post(base+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return x7Result{}, err
	}
	defer resp.Body.Close()
	res := x7Result{latency: time.Since(start), queryIdx: queryIdx}
	switch resp.StatusCode {
	case http.StatusOK:
		var qr server.QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			return x7Result{}, err
		}
		res.admitted, res.answer = true, qr.Answer
	case http.StatusTooManyRequests:
		res.retryAfter = resp.Header.Get("Retry-After") != ""
	default:
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		return x7Result{}, fmt.Errorf("unexpected status %d: %s", resp.StatusCode, e.Error)
	}
	return res, nil
}

// X7Envelope renders the load/SLO experiment.
func X7Envelope(s Scale) (*Table, error) {
	t := &Table{
		ID:    "X7",
		Title: "serving envelope under load: admission, backpressure, and admitted-tail latency",
		Columns: []string{"load", "mix", "workers", "cap", "requests", "admitted",
			"429s", "p50 ms", "p99 ms", "p999 ms", "admitted qps"},
	}
	rows, err := x7Measure(s)
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		sort.Slice(r.latencies, func(i, j int) bool { return r.latencies[i] < r.latencies[j] })
		level := "within"
		if r.workers > r.inFlight {
			level = "overload"
		}
		var total time.Duration
		for _, l := range r.latencies {
			total += l
		}
		qps := 0.0
		if total > 0 {
			// Aggregate service throughput of the admitted stream: requests
			// per second of summed in-request time, an envelope-independent
			// denominator (wall time would charge the rejected stream too).
			qps = float64(r.admitted) / total.Seconds() * float64(minInt(r.workers, r.inFlight))
		}
		t.AddRow(level, r.mix, r.workers, r.inFlight, r.requests, r.admitted, r.rejected,
			float64(x7Percentile(r.latencies, 0.50))/1e6,
			float64(x7Percentile(r.latencies, 0.99))/1e6,
			float64(x7Percentile(r.latencies, 0.999))/1e6,
			qps)
	}
	t.Note("SLOs asserted in-line: zero rejections within the cap, backpressure beyond it, every 429 carries Retry-After")
	t.Note("no request exceeded the %s hang bound; every admitted verdict differentially checked against the store", x7HangBound)
	return t, nil
}

// X7EnvelopeMetrics reports the headline overload numbers — the admitted
// p99 latency (ms) and the rejection rate over the overload zipf mix —
// for BenchmarkX7's metrics, so BENCH_ci.json tracks the envelope's
// behavior under pressure from this PR on.
func X7EnvelopeMetrics(s Scale) (p99Ms, rejectedRate float64, err error) {
	rows, err := x7Measure(s)
	if err != nil {
		return 0, 0, err
	}
	for _, r := range rows {
		if r.mix != "zipf" || r.workers <= r.inFlight {
			continue
		}
		sort.Slice(r.latencies, func(i, j int) bool { return r.latencies[i] < r.latencies[j] })
		p99Ms = float64(x7Percentile(r.latencies, 0.99)) / 1e6
		if r.requests > 0 {
			rejectedRate = float64(r.rejected) / float64(r.requests)
		}
	}
	return p99Ms, rejectedRate, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
