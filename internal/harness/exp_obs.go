package harness

// X8 measures what the observability layer itself costs on the serve
// path: the same single-query HTTP workload is driven through the server
// handler with metrics recording enabled (the shipped default) and with
// the obs kill switch thrown (no clock reads, no atomic bucket writes),
// in alternating rounds so CPU-frequency drift and allocator state hit
// both modes equally. The headline is the relative QPS overhead — the
// instrumentation exists to watch the paper's NC answer path, so it must
// not itself erode that path. The experiment takes the best round per
// mode (minimum is the standard noise filter for same-work loops) and
// also reports per-request p99 under each mode.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"time"

	"pitract/internal/obs"
	"pitract/internal/schemes"
	"pitract/internal/server"
	"pitract/internal/store"
)

// x8Round drives requests pre-encoded bodies through h and returns the
// total wall time plus the sorted per-request latencies.
func x8Round(h http.Handler, bodies [][]byte) (time.Duration, []time.Duration, error) {
	lat := make([]time.Duration, len(bodies))
	roundStart := time.Now()
	for i, body := range bodies {
		req := httptest.NewRequest(http.MethodPost, "/v1/query", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		start := time.Now()
		h.ServeHTTP(rec, req)
		lat[i] = time.Since(start)
		if rec.Code != http.StatusOK {
			return 0, nil, fmt.Errorf("X8: query %d: status %d (%s)", i, rec.Code, rec.Body.String())
		}
	}
	total := time.Since(roundStart)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return total, lat, nil
}

// x8Mode is one instrumentation mode's best-round measurement.
type x8Mode struct {
	name     string
	requests int
	bestNs   float64 // best-round total, ns
	p99      time.Duration
}

// x8Measure runs the alternating-round comparison. The handler is driven
// in-process (httptest recorder, no sockets) so the measured delta is the
// instrumentation, not localhost networking.
func x8Measure(s Scale) (on, off x8Mode, err error) {
	requests := 4000
	rounds := 6
	if s == Full {
		requests = 20000
		rounds = 8
	}

	srv := server.New(store.NewRegistry(""), nil)
	h := srv.Handler()
	reg, _ := json.Marshal(server.RegisterRequest{
		ID: "x8", Scheme: "list-membership/sorted",
		Data: schemes.EncodeList([]int64{1, 3, 5, 7, 9, 11}),
	})
	req := httptest.NewRequest(http.MethodPost, "/v1/datasets", bytes.NewReader(reg))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return on, off, fmt.Errorf("X8: register: status %d (%s)", rec.Code, rec.Body.String())
	}
	bodies := make([][]byte, requests)
	for i := range bodies {
		bodies[i], _ = json.Marshal(server.QueryRequest{
			Dataset: "x8", Query: schemes.PointQuery(int64(2*i + 1)),
		})
	}

	// The kill switch is process-wide; restore the shipped default whatever
	// happens below.
	defer obs.SetEnabled(true)

	// One untimed warmup round per mode brings the handler to steady state
	// (scheme-counter sync.Map entries, JSON decoder buffers, warm caches)
	// before anything is compared — round totals are small enough that a
	// first-round page fault would otherwise masquerade as overhead.
	for _, enabled := range []bool{true, false} {
		obs.SetEnabled(enabled)
		if _, _, err := x8Round(h, bodies); err != nil {
			return on, off, err
		}
	}

	on = x8Mode{name: "instrumented", requests: requests}
	off = x8Mode{name: "uninstrumented", requests: requests}
	for r := 0; r < rounds; r++ {
		for _, m := range []struct {
			enabled bool
			mode    *x8Mode
		}{{true, &on}, {false, &off}} {
			obs.SetEnabled(m.enabled)
			total, lat, err := x8Round(h, bodies)
			if err != nil {
				return on, off, err
			}
			if ns := float64(total.Nanoseconds()); m.mode.bestNs == 0 || ns < m.mode.bestNs {
				m.mode.bestNs = ns
				m.mode.p99 = lat[len(lat)*99/100]
			}
		}
	}
	return on, off, nil
}

// x8OverheadPct is the relative QPS cost of instrumentation, floored at
// zero (jitter can make the instrumented round win; a negative overhead is
// noise, not a speedup).
func x8OverheadPct(on, off x8Mode) float64 {
	if off.bestNs <= 0 {
		return 0
	}
	pct := 100 * (on.bestNs - off.bestNs) / off.bestNs
	if pct < 0 {
		return 0
	}
	return pct
}

// X8ObsOverhead renders the instrumentation-overhead experiment.
func X8ObsOverhead(s Scale) (*Table, error) {
	on, off, err := x8Measure(s)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "X8",
		Title:   "observability overhead: instrumented vs uninstrumented serve path",
		Columns: []string{"mode", "requests", "qps", "p99 µs"},
	}
	for _, m := range []x8Mode{on, off} {
		qps := 1e9 * float64(m.requests) / m.bestNs
		t.AddRow(m.name, m.requests, qps, float64(m.p99.Nanoseconds())/1e3)
	}
	t.Note("same handler, same bodies, alternating rounds; best round per mode (in-process, no sockets)")
	t.Note("instrumentation overhead: %.1f%% QPS — per request the obs layer is a few clock reads and lock-free atomic adds against a JSON-dominated handler", x8OverheadPct(on, off))
	return t, nil
}

// X8OverheadMetrics reports the headline numbers — the relative QPS
// overhead of instrumentation and the instrumented QPS — for BenchmarkX8,
// so BENCH_ci.json tracks the cost of the observability layer from this
// PR on.
func X8OverheadMetrics(s Scale) (overheadPct, instrumentedQPS float64, err error) {
	on, off, err := x8Measure(s)
	if err != nil {
		return 0, 0, err
	}
	return x8OverheadPct(on, off), 1e9 * float64(on.requests) / on.bestNs, nil
}
