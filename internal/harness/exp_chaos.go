package harness

// X11 drives a live server through the serve-path failure modes the
// graceful-degradation layer exists for, asserting the contract in-line
// at every phase rather than rendering a table for a server that
// misbehaved:
//
//   - deadlines: a dataset whose exact path stalls past the query budget
//     answers 504, and no request overruns the budget by more than the
//     slack — an expired request never holds the serving path hostage;
//   - breakers: repeated deadline expiries trip the dataset open, an open
//     breaker refuses fast (503 + Retry-After) and turns /healthz
//     unhealthy, and once the fault clears the breaker heals through its
//     half-open probe within the configured backoff;
//   - degraded answering: a stalled dataset with a declared fallback
//     keeps serving 200s flagged "degraded": true, with every verdict
//     identical to the exact oracle;
//   - quarantine-and-heal: a snapshot corrupted at rest — behind a flaky,
//     fault-injecting read path — is renamed aside as *.quarantine, the
//     dataset rebuilt from source, and the surviving write-ahead delta
//     log replayed, ending at the exact acknowledged version.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"pitract/internal/core"
	"pitract/internal/graph"
	"pitract/internal/schemes"
	"pitract/internal/server"
	"pitract/internal/store"
	"pitract/internal/store/faultfs"
)

const (
	// x11Budget is the per-query wall budget the server enforces.
	x11Budget = 250 * time.Millisecond
	// x11Stall is how long a chaos-stalled exact answer parks — far past
	// the budget, so every stalled query must 504.
	x11Stall = 600 * time.Millisecond
	// x11OverBudgetSlack is the zero-hangs SLO: no 504 may arrive more
	// than this past the budget (HTTP round trip + scheduler included).
	x11OverBudgetSlack = 50 * time.Millisecond
)

// x11BreakerCfg is the chaos run's breaker tuning: two failures degrade,
// four trip, probes retry on a 200ms backoff capped at 2s.
func x11BreakerCfg() store.BreakerConfig {
	return store.BreakerConfig{
		Window:        10 * time.Second,
		DegradedAfter: 2,
		OpenAfter:     4,
		Backoff:       200 * time.Millisecond,
		MaxBackoff:    2 * time.Second,
	}
}

// x11StallScheme wraps a reachability scheme's prepared answerer with a
// gated stall: while stall holds, every exact probe parks for x11Stall.
// The declared fallback (when the base scheme has one) is untouched —
// degraded answers stay fast, which is the point of declaring them.
func x11StallScheme(base *core.Scheme, stall *atomic.Bool) *core.Scheme {
	wrapped := *base
	prepare := base.PrepareAnswerer
	wrapped.PrepareAnswerer = func(pd []byte) (core.Answerer, error) {
		a, err := prepare(pd)
		if err != nil {
			return nil, err
		}
		return core.AnswererFunc(func(q []byte) (bool, error) {
			if stall.Load() {
				time.Sleep(x11Stall)
			}
			return a.Answer(q)
		}), nil
	}
	return &wrapped
}

// x11Row is one chaos phase's tally.
type x11Row struct {
	phase     string
	requests  int
	ok200     int
	s503      int
	s504      int
	degraded  int
	maxOverMs float64
	checked   int // verdicts differentially checked against the oracle
}

// x11Reply is one request's decoded outcome.
type x11Reply struct {
	code       int
	answer     bool
	degraded   bool
	retryAfter bool
	latency    time.Duration
	errBody    string
}

// x11Post issues one query and decodes whatever came back.
func x11Post(client *http.Client, base, dataset string, query []byte) (x11Reply, error) {
	body, err := json.Marshal(server.QueryRequest{Dataset: dataset, Query: query})
	if err != nil {
		return x11Reply{}, err
	}
	start := time.Now()
	resp, err := client.Post(base+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return x11Reply{}, err
	}
	defer resp.Body.Close()
	rep := x11Reply{code: resp.StatusCode, latency: time.Since(start),
		retryAfter: resp.Header.Get("Retry-After") != ""}
	if resp.StatusCode == http.StatusOK {
		var qr server.QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			return x11Reply{}, err
		}
		rep.answer, rep.degraded = qr.Answer, qr.Degraded
	} else {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		rep.errBody = e.Error
	}
	return rep, nil
}

// x11Healthz fetches the verbose health map.
func x11Healthz(client *http.Client, base string) (code int, status string, health map[string]string, err error) {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	var body struct {
		Status string            `json:"status"`
		Health map[string]string `json:"health"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return 0, "", nil, err
	}
	return resp.StatusCode, body.Status, body.Health, nil
}

// x11Measure runs the chaos timeline and returns the per-phase tallies
// plus the headline metrics: how long the tripped breaker took to serve
// again after the fault cleared, and the degraded-answer rate over the
// degraded phase.
func x11Measure(s Scale) (rows []x11Row, recoveryMs, degradedRate float64, err error) {
	n, universeSize := 96, 48
	if s == Full {
		n, universeSize = 240, 128
	}
	g := graph.CommunityGraph(6, n/6, n/2, int64(n)+31)
	cfg := x11BreakerCfg()

	var stallA, stallB atomic.Bool
	reg := store.NewRegistry("")
	reg.SetBreakerConfig(cfg)
	srv := server.New(reg, nil)
	srv.SetLimits(server.Limits{QueryBudget: x11Budget})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, 0, 0, fmt.Errorf("X11: listen: %w", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	// Dataset A declares a fallback (labels → dense closure probe), so it
	// can degrade; dataset B (BFS per query) declares none, so it can only
	// 504 and trip.
	const idA, idB = "chaos-labels", "chaos-bfs"
	if _, err := reg.Register(idA, x11StallScheme(schemes.ReachabilityLabelsScheme(), &stallA), g.Encode()); err != nil {
		return nil, 0, 0, fmt.Errorf("X11: register %s: %w", idA, err)
	}
	if _, err := reg.Register(idB, x11StallScheme(schemes.ReachabilityBFSScheme(), &stallB), g.Encode()); err != nil {
		return nil, 0, 0, fmt.Errorf("X11: register %s: %w", idB, err)
	}

	// The oracle: the unwrapped BFS scheme's raw Answer over its own Π.
	truth := schemes.ReachabilityBFSScheme()
	prep, err := truth.Preprocess(g.Encode())
	if err != nil {
		return nil, 0, 0, fmt.Errorf("X11: oracle preprocess: %w", err)
	}
	rng := rand.New(rand.NewSource(int64(n) + 13))
	universe := make([][]byte, universeSize)
	expect := make([]bool, universeSize)
	for i := range universe {
		universe[i] = schemes.NodePairQuery(rng.Intn(g.N()), rng.Intn(g.N()))
		if expect[i], err = truth.Answer(prep, universe[i]); err != nil {
			return nil, 0, 0, fmt.Errorf("X11: oracle: %w", err)
		}
	}
	client := &http.Client{Timeout: 10 * time.Second}

	// Phase 1 — healthy: both datasets answer exact, on budget, correct.
	healthy := x11Row{phase: "healthy"}
	for _, id := range []string{idA, idB} {
		for i := 0; i < 12 && i < universeSize; i++ {
			rep, perr := x11Post(client, base, id, universe[i])
			if perr != nil {
				return nil, 0, 0, fmt.Errorf("X11: healthy/%s: %w", id, perr)
			}
			healthy.requests++
			if rep.code != http.StatusOK || rep.degraded {
				return nil, 0, 0, fmt.Errorf("X11: healthy/%s: status %d degraded %v (%s), want a plain 200",
					id, rep.code, rep.degraded, rep.errBody)
			}
			healthy.ok200++
			if rep.answer != expect[i] {
				return nil, 0, 0, fmt.Errorf("X11: healthy/%s: query %d diverged (got %v, want %v)", id, i, rep.answer, expect[i])
			}
			healthy.checked++
		}
	}
	if code, status, _, herr := x11Healthz(client, base); herr != nil || code != http.StatusOK || status != "ok" {
		return nil, 0, 0, fmt.Errorf("X11: healthy: healthz = (%d, %q, %v), want (200, ok, nil)", code, status, herr)
	}
	rows = append(rows, healthy)

	// Phase 2 — deadline: B's exact path stalls past the budget; every
	// query 504s, and none overruns the budget by more than the slack.
	stallB.Store(true)
	deadline := x11Row{phase: "deadline"}
	for i := 0; i < cfg.OpenAfter; i++ {
		rep, perr := x11Post(client, base, idB, universe[i%universeSize])
		if perr != nil {
			return nil, 0, 0, fmt.Errorf("X11: deadline: %w", perr)
		}
		deadline.requests++
		if rep.code != http.StatusGatewayTimeout {
			return nil, 0, 0, fmt.Errorf("X11: deadline: stalled query %d got status %d (%s), want 504", i, rep.code, rep.errBody)
		}
		deadline.s504++
		over := rep.latency - x11Budget
		if overMs := float64(over) / 1e6; overMs > deadline.maxOverMs {
			deadline.maxOverMs = overMs
		}
		if over > x11OverBudgetSlack {
			return nil, 0, 0, fmt.Errorf("X11: deadline: 504 arrived %.1fms past the %s budget (slack %s) — the deadline did not abandon the worker",
				float64(over)/1e6, x11Budget, x11OverBudgetSlack)
		}
	}
	rows = append(rows, deadline)

	// Phase 3 — open: the breaker refuses fast with Retry-After, and
	// /healthz drains the node.
	open := x11Row{phase: "open"}
	rep, perr := x11Post(client, base, idB, universe[0])
	if perr != nil {
		return nil, 0, 0, fmt.Errorf("X11: open: %w", perr)
	}
	open.requests++
	if rep.code != http.StatusServiceUnavailable || !rep.retryAfter {
		return nil, 0, 0, fmt.Errorf("X11: open: got status %d retry-after %v (%s), want a 503 with Retry-After",
			rep.code, rep.retryAfter, rep.errBody)
	}
	open.s503++
	if rep.latency > x11Budget {
		return nil, 0, 0, fmt.Errorf("X11: open: refusal took %s — an open breaker must fail fast, not pay the stall", rep.latency)
	}
	if code, status, health, herr := x11Healthz(client, base); herr != nil ||
		code != http.StatusServiceUnavailable || status != "unhealthy" || health[idB] != "open" {
		return nil, 0, 0, fmt.Errorf("X11: open: healthz = (%d, %q, %v, %v), want (503, unhealthy, %s open)",
			code, status, health, herr, idB)
	}
	rows = append(rows, open)

	// Phase 4 — degraded: A's exact path stalls too, but A declares a
	// fallback: after the soft threshold, answers keep flowing as exact
	// verdicts flagged "degraded": true.
	stallA.Store(true)
	degraded := x11Row{phase: "degraded"}
	for i := 0; i < cfg.DegradedAfter; i++ {
		rep, perr := x11Post(client, base, idA, universe[i])
		if perr != nil {
			return nil, 0, 0, fmt.Errorf("X11: degraded: %w", perr)
		}
		degraded.requests++
		if rep.code != http.StatusGatewayTimeout {
			return nil, 0, 0, fmt.Errorf("X11: degraded: stalled query %d got status %d (%s), want 504 first", i, rep.code, rep.errBody)
		}
		degraded.s504++
	}
	for i := 0; i < 8 && i < universeSize; i++ {
		rep, perr := x11Post(client, base, idA, universe[i])
		if perr != nil {
			return nil, 0, 0, fmt.Errorf("X11: degraded: %w", perr)
		}
		degraded.requests++
		if rep.code != http.StatusOK || !rep.degraded {
			return nil, 0, 0, fmt.Errorf("X11: degraded: query %d got status %d degraded %v (%s), want a degraded 200",
				i, rep.code, rep.degraded, rep.errBody)
		}
		degraded.ok200++
		degraded.degraded++
		if rep.answer != expect[i] {
			return nil, 0, 0, fmt.Errorf("X11: degraded: query %d diverged through the fallback (got %v, want %v) — degradation changed an answer",
				i, rep.answer, expect[i])
		}
		degraded.checked++
	}
	degradedRate = float64(degraded.degraded) / float64(degraded.ok200)
	rows = append(rows, degraded)

	// Phase 5 — heal: the stalls clear; B's breaker must serve again
	// within the configured backoff (its next admitted request is the
	// half-open probe), and every post-recovery verdict matches the
	// oracle on both datasets.
	stallA.Store(false)
	stallB.Store(false)
	heal := x11Row{phase: "heal"}
	healStart := time.Now()
	recovered := false
	for time.Since(healStart) < cfg.MaxBackoff+time.Second {
		rep, perr := x11Post(client, base, idB, universe[0])
		if perr != nil {
			return nil, 0, 0, fmt.Errorf("X11: heal: %w", perr)
		}
		heal.requests++
		if rep.code == http.StatusOK {
			heal.ok200++
			recovered = true
			break
		}
		if rep.code != http.StatusServiceUnavailable {
			return nil, 0, 0, fmt.Errorf("X11: heal: got status %d (%s) while waiting out the backoff, want 503 or 200", rep.code, rep.errBody)
		}
		heal.s503++
		time.Sleep(20 * time.Millisecond)
	}
	recoveryMs = float64(time.Since(healStart)) / 1e6
	if !recovered {
		return nil, 0, 0, fmt.Errorf("X11: heal: breaker still open %.0fms after the fault cleared (max backoff %s)", recoveryMs, cfg.MaxBackoff)
	}
	for _, id := range []string{idA, idB} {
		for i := range universe {
			rep, perr := x11Post(client, base, id, universe[i])
			if perr != nil {
				return nil, 0, 0, fmt.Errorf("X11: heal/%s: %w", id, perr)
			}
			heal.requests++
			if rep.code != http.StatusOK {
				return nil, 0, 0, fmt.Errorf("X11: heal/%s: query %d got status %d (%s), want 200", id, i, rep.code, rep.errBody)
			}
			heal.ok200++
			if rep.degraded {
				heal.degraded++
			}
			if rep.answer != expect[i] {
				return nil, 0, 0, fmt.Errorf("X11: heal/%s: query %d diverged after recovery (got %v, want %v)", id, i, rep.answer, expect[i])
			}
			heal.checked++
		}
	}
	if code, _, health, herr := x11Healthz(client, base); herr != nil || code == http.StatusServiceUnavailable || health[idB] != "healthy" {
		return nil, 0, 0, fmt.Errorf("X11: heal: healthz = (%d, %v, %v), want %s healthy again", code, health, herr, idB)
	}
	rows = append(rows, heal)

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	err = srv.Shutdown(shutdownCtx)
	cancel()
	if err != nil {
		return nil, 0, 0, fmt.Errorf("X11: shutdown: %w", err)
	}
	if err := <-serveErr; err != nil {
		return nil, 0, 0, fmt.Errorf("X11: serve: %w", err)
	}

	// Phase 6 — quarantine-and-heal behind a chaotic medium: a snapshot
	// corrupted at rest, read through a fault-injecting file layer, must
	// be renamed aside, rebuilt from source, and the surviving delta log
	// replayed to the acknowledged version.
	qrow, err := x11Quarantine()
	if err != nil {
		return nil, 0, 0, err
	}
	rows = append(rows, qrow)
	return rows, recoveryMs, degradedRate, nil
}

// x11Quarantine is the corrupt-at-rest leg of the chaos run.
func x11Quarantine() (x11Row, error) {
	row := x11Row{phase: "quarantine"}
	const dir, id = "chaos-data", "pt"
	f := faultfs.New()
	med := &store.Medium{Dir: dir, FS: f, CheckpointEvery: 5}
	reg := store.NewRegistryMedium(med)
	data := schemes.RelationFromKeys([]int64{2, 4, 6})
	if _, err := reg.Register(id, schemes.PointSelectionScheme(), data); err != nil {
		return row, fmt.Errorf("X11: quarantine: register: %w", err)
	}
	// One acknowledged delta stays in the write-ahead log (cadence 5), so
	// the rebuild has real state to replay.
	if _, err := reg.ApplyDelta(id, [][]byte{schemes.KeysDelta([]int64{9})}); err != nil {
		return row, fmt.Errorf("X11: quarantine: delta: %w", err)
	}

	spath := store.SnapshotPath(dir, id)
	snap, ok := f.DurableBytes(spath)
	if !ok || len(snap) == 0 {
		return row, fmt.Errorf("X11: quarantine: no durable snapshot at %s", spath)
	}
	if !f.CorruptByte(spath, len(snap)/2) {
		return row, fmt.Errorf("X11: quarantine: CorruptByte missed %s", spath)
	}

	// Restart the medium with probabilistic read chaos armed: transient
	// errors and injected latency. (Torn reads stay off here: a silent
	// short read lies outside the WAL's crash model — real reads error
	// rather than truncate — and would discard the acknowledged tail.)
	// The load path must retry the transients, catch the corruption, and
	// quarantine.
	f.Restart()
	f.SetReadFaults(faultfs.ReadFaults{Seed: 11, ErrorRate: 0.2, Latency: time.Millisecond, LatencyRate: 0.3})
	reg2 := store.NewRegistryMedium(med)
	st, err := reg2.Register(id, schemes.PointSelectionScheme(), data)
	if err != nil {
		return row, fmt.Errorf("X11: quarantine: re-register over corrupt snapshot: %w", err)
	}
	row.requests++
	if st.WasLoaded() {
		return row, fmt.Errorf("X11: quarantine: dataset claims snapshot-loaded over corrupt bytes")
	}
	if n := reg2.QuarantineCount(); n != 1 {
		return row, fmt.Errorf("X11: quarantine: QuarantineCount %d, want 1", n)
	}
	if _, ok := f.DurableBytes(store.QuarantinePath(spath)); !ok {
		return row, fmt.Errorf("X11: quarantine: corrupt artifact not preserved at %s", store.QuarantinePath(spath))
	}
	if v := st.Version(); v != 1 {
		return row, fmt.Errorf("X11: quarantine: rebuilt at version %d, want 1 (log replayed)", v)
	}
	for _, tc := range []struct {
		key  int64
		want bool
	}{{2, true}, {4, true}, {9, true}, {3, false}} {
		got, err := st.Answer(schemes.PointQuery(tc.key))
		if err != nil || got != tc.want {
			return row, fmt.Errorf("X11: quarantine: key %d = (%v, %v), want (%v, nil)", tc.key, got, err, tc.want)
		}
		row.checked++
	}
	row.ok200 = row.checked

	// The heal is durable: a clean restart loads the rewritten snapshot
	// at the replayed version.
	f.Restart()
	reg3 := store.NewRegistryMedium(med)
	st3, err := reg3.Register(id, schemes.PointSelectionScheme(), data)
	if err != nil {
		return row, fmt.Errorf("X11: quarantine: post-heal restart: %w", err)
	}
	if !st3.WasLoaded() || st3.Version() != 1 {
		return row, fmt.Errorf("X11: quarantine: post-heal restart loaded %v at version %d, want a clean load at 1",
			st3.WasLoaded(), st3.Version())
	}
	return row, nil
}

// X11Chaos renders the serve-path chaos experiment.
func X11Chaos(s Scale) (*Table, error) {
	t := &Table{
		ID:    "X11",
		Title: "serve-path chaos: query deadlines, breaker trip/heal, degraded fallbacks, quarantine-and-heal",
		Columns: []string{"phase", "requests", "200s", "503s", "504s", "degraded",
			"max over-budget ms", "verdicts ok"},
	}
	rows, recoveryMs, degradedRate, err := x11Measure(s)
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		t.AddRow(r.phase, r.requests, r.ok200, r.s503, r.s504, r.degraded, r.maxOverMs, r.checked)
	}
	cfg := x11BreakerCfg()
	t.Note("SLOs asserted in-line: every 504 within %s of the %s budget; open breaker refuses fast with Retry-After", x11OverBudgetSlack, x11Budget)
	t.Note("breaker served again %.0f ms after the fault cleared (backoff %s, max %s); degraded rate %.0f%% with every verdict matching the oracle",
		recoveryMs, cfg.Backoff, cfg.MaxBackoff, degradedRate*100)
	t.Note("quarantine leg: corrupt snapshot renamed aside behind injected read faults, Π rebuilt, delta log replayed to the acknowledged version")
	return t, nil
}

// X11ChaosMetrics reports the headline chaos numbers — how long the
// tripped breaker took to serve again once the fault cleared, and the
// degraded-answer rate while the fallback carried the traffic — for
// BenchmarkX11, so BENCH_ci.json tracks recovery behavior from this PR on.
func X11ChaosMetrics(s Scale) (recoveryMs, degradedRate float64, err error) {
	_, recoveryMs, degradedRate, err = x11Measure(s)
	return recoveryMs, degradedRate, err
}
