// Package harness regenerates every figure, example and case study of the
// paper as a measured table. Each experiment has an id (E1, E3, F1…F2,
// C1…C12, T5, T9, L2, P10, A1…A3, X1…X11) matching DESIGN.md's
// per-experiment index, a
// generator that runs the workload at several sizes, and — where the paper
// makes a growth claim — a fitted growth label from core.Classify.
//
// The harness is deliberately self-contained: `pitract run <id>` prints the
// table, `go test -bench Benchmark<id>` measures the same code under the
// benchmark driver.
package harness

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"pitract/internal/core"
)

// Table is one experiment's rendered result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1e6:
		return fmt.Sprintf("%.3g", v)
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Note records a free-text observation (growth fits, ratios, verdicts).
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Scale selects experiment sizes: Quick keeps the whole suite in seconds
// (tests, CI); Full uses the sizes quoted in EXPERIMENTS.md.
type Scale int

const (
	// Quick is the test/CI scale.
	Quick Scale = iota
	// Full is the EXPERIMENTS.md scale.
	Full
)

// sizes returns q for Quick and f for Full.
func (s Scale) sizes(q, f []int) []int {
	if s == Full {
		return f
	}
	return q
}

// parallelism is the worker count the parallel experiments (X1, X2) use;
// 0 means runtime.GOMAXPROCS(0). It is a process-wide knob so the CLI's
// -parallel flag reaches the experiment generators without threading a
// parameter through every Run signature.
var parallelism atomic.Int32

// SetParallelism sets the worker count for the parallel experiments.
// n <= 0 restores the default (GOMAXPROCS).
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelism.Store(int32(n))
}

// Parallelism reports the effective worker count for the parallel
// experiments.
func Parallelism() int {
	if p := parallelism.Load(); p > 0 {
		return int(p)
	}
	return runtime.GOMAXPROCS(0)
}

// timeOp measures the mean wall time of f over iters runs, in nanoseconds.
func timeOp(iters int, f func()) float64 {
	if iters < 1 {
		iters = 1
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		f()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

// fitNote renders a growth fit for a measurement series, or the error.
func fitNote(label string, ms []core.Measurement) string {
	fit, err := core.Classify(ms)
	if err != nil {
		return fmt.Sprintf("%s: unclassifiable (%v)", label, err)
	}
	return fmt.Sprintf("%s: %s growth (log-log slope %.2f, R² %.2f)",
		label, fit.Growth, fit.Exponent, fit.LogLogR2)
}

// mustFit classifies and panics on error; experiments construct their
// sweeps to satisfy Classify's preconditions.
func mustFit(ms []core.Measurement) core.Fit {
	fit, err := core.Classify(ms)
	if err != nil {
		panic(err)
	}
	return fit
}

// Experiment couples an id with its generator.
type Experiment struct {
	ID    string
	Title string
	Run   func(s Scale) (*Table, error)
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Example 1 / §1: point selection — scan vs B⁺-tree, plus the 1PB arithmetic", E1PointSelection},
		{"F1", "Figure 1: two factorizations of BDS", F1BDSFactorizations},
		{"F2", "Figure 2: the class landscape", F2Landscape},
		{"E3", "Example 3: reachability — BFS per query vs closure matrix", E3Reachability},
		{"C1", "§4(1): range selection", C1RangeSelection},
		{"C2", "§4(2): searching in a list", C2ListSearch},
		{"C3", "§4(3): minimum range queries", C3RMQ},
		{"C4", "§4(4): lowest common ancestors", C4LCA},
		{"C5", "§4(5): query-preserving compression", C5Compression},
		{"C6", "§4(6): query answering using views", C6Views},
		{"C7", "§4(7): bounded incremental evaluation", C7Incremental},
		{"C8", "§4(8)/§6: CVP made Π-tractable", C8CVP},
		{"C9", "§4(9): vertex cover via Buss kernelization", C9VertexCover},
		{"C10", "§8(5): top-k answering with early termination", C10TopK},
		{"C11", "§1: incremental preprocessing of Π(D ⊕ ∆D)", C11IncrementalPreprocessing},
		{"C12", "§8(3)+Def.1 remark: function schemes and query rewriting λ", C12FunctionAndRewriting},
		{"T5", "Theorem 5 / Corollary 6: the P → CVP → BDS chain", T5Chain},
		{"L2", "Lemma 2: transitivity of ≤NC_fa via padding", L2Composition},
		{"T9", "Theorem 9: separation — the Υ0 factorization cannot be helped", T9Separation},
		{"P10", "Proposition 10 / §7: F-reductions among Π-tractable classes", P10FReductions},
		{"A1", "ablation: transitive closure representations", A1ClosureAblation},
		{"A2", "ablation: B⁺-tree fanout", A2BTreeFanout},
		{"A3", "ablation: RMQ structures", A3RMQAblation},
		{"X1", "parallel PRAM executor vs the sequential oracle", X1ParallelPRAM},
		{"X2", "concurrent batch answering vs one-at-a-time", X2BatchAnswering},
		{"X3", "served queries: HTTP API vs direct Answer calls", X3Serving},
		{"X4", "sharded stores: preprocess time, snapshot bytes, served QPS", X4Sharding},
		{"X5", "incremental serving: PATCH-maintained Π(D ⊕ ∆D) vs re-registering", X5IncrementalServing},
		{"X6", "hot-path answer cache: cached vs uncached QPS over hot/zipf/cold mixes", X6HotPath},
		{"X7", "serving envelope under load: admission, backpressure, admitted-tail latency", X7Envelope},
		{"X8", "observability overhead: instrumented vs uninstrumented serve path", X8ObsOverhead},
		{"X9", "full dynamism: delete-maintained Π(D ⊕ ∆D) vs rebuild, delta-log crash replay", X9FullDynamism},
		{"X10", "succinct Π: 2-hop labels on the compressed DAG vs the dense closure matrix", X10Succinct},
		{"X11", "serve-path chaos: query deadlines, breaker trip/heal, degraded fallbacks, quarantine-and-heal", X11Chaos},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}
