package harness

// X9 measures full dynamism: datasets maintained under mixed
// insert/delete/upsert deltas — the paper's Π(D ⊕ ∆D) with ∆D now allowed
// to retract facts — and the write-ahead delta log that makes every
// acknowledged batch crash-durable. For each size the table compares the
// wall time of delete-heavy maintenance against re-registering the updated
// dataset from scratch, then simulates a crash (a registry discarded with
// uncheckpointed log records) and times the replay that brings a fresh
// registry back to the exact acknowledged version. Every maintained
// verdict is differentially checked in-line against a from-scratch
// preprocessing of the updated data, before and after the replay.

import (
	"fmt"
	"math/rand"
	"os"

	"pitract/internal/core"
	"pitract/internal/graph"
	"pitract/internal/schemes"
	"pitract/internal/store"
)

// x9Workload is one mixed-dynamism scenario.
type x9Workload struct {
	scheme  string
	inc     *core.IncrementalScheme
	data    []byte
	batches [][][]byte // each batch = one ApplyDelta call, mixed kinds
	queries [][]byte
}

// x9PointSelection churns a sorted-key relation: every batch inserts two
// fresh odd keys and tombstones two original even keys.
func x9PointSelection(n int) x9Workload {
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(2 * i)
	}
	batches := make([][][]byte, 12)
	var touched []int64
	for i := range batches {
		ins := []int64{int64(2*n + 2*i + 1), int64(4*n + 2*i + 1)}
		del := []int64{int64(4 * i), int64(4*i + 2)}
		touched = append(touched, ins...)
		touched = append(touched, del...)
		batches[i] = [][]byte{schemes.KeysDelta(ins), schemes.KeysDeleteDelta(del)}
	}
	var queries [][]byte
	for _, k := range touched {
		queries = append(queries, schemes.PointQuery(k))
	}
	queries = append(queries, schemes.PointQuery(int64(2*n-2)), schemes.PointQuery(1))
	return x9Workload{
		scheme:  "point-selection/sorted-keys",
		inc:     schemes.IncrementalPointSelection(),
		data:    schemes.RelationFromKeys(keys),
		batches: batches,
		queries: queries,
	}
}

// x9Reachability churns a community graph: each batch inserts a fresh edge
// and retracts one inserted two batches earlier, so the decremental path
// (Vigny reroute-or-recompute) runs on every batch after the second.
func x9Reachability(n int) x9Workload {
	g := graph.CommunityGraph(8, n/8, n/4, int64(n)+81)
	rng := rand.New(rand.NewSource(int64(n) + 41))
	used := map[[2]int]bool{}
	freshPair := func() (int, int) {
		for {
			u, v := rng.Intn(g.N()), rng.Intn(g.N())
			if u != v && !g.HasEdge(u, v) && !used[[2]int{u, v}] {
				used[[2]int{u, v}] = true
				return u, v
			}
		}
	}
	const k = 8
	pairs := make([][2]int, k)
	for i := range pairs {
		u, v := freshPair()
		pairs[i] = [2]int{u, v}
	}
	batches := make([][][]byte, k)
	for i := 0; i < k; i++ {
		batch := [][]byte{schemes.EdgeDelta(pairs[i][0], pairs[i][1])}
		if i >= 2 {
			batch = append(batch, schemes.EdgeDeleteDelta(pairs[i-2][0], pairs[i-2][1]))
		}
		batches[i] = batch
	}
	queries := make([][]byte, 128)
	for i := range queries {
		queries[i] = schemes.NodePairQuery(rng.Intn(g.N()), rng.Intn(g.N()))
	}
	return x9Workload{
		scheme:  "reachability/closure-matrix",
		inc:     schemes.IncrementalReachability(),
		data:    g.Encode(),
		batches: batches,
		queries: queries,
	}
}

// x9Check differentially verifies the maintained store against a
// from-scratch preprocessing of the updated raw data.
func x9Check(wl x9Workload, st *store.Store, updated []byte, where string) error {
	fresh, err := wl.inc.Scheme.Preprocess(updated)
	if err != nil {
		return fmt.Errorf("X9: %s: fresh preprocess: %w", where, err)
	}
	for i, q := range wl.queries {
		got, err := st.Answer(q)
		if err != nil {
			return fmt.Errorf("X9: %s query %d: %w", where, i, err)
		}
		want, err := wl.inc.Scheme.Answer(fresh, q)
		if err != nil {
			return fmt.Errorf("X9: %s query %d oracle: %w", where, i, err)
		}
		if got != want {
			return fmt.Errorf("X9: %s query %d: maintained %v, rebuilt %v", where, i, got, want)
		}
	}
	return nil
}

// x9Run measures one workload: maintain ms, rebuild ms, and replay ms,
// returning the row plus the headline metrics.
func x9Run(wl x9Workload) (row []interface{}, speedup, replayMs float64, err error) {
	updated := wl.data
	var totalDeltas int
	for _, b := range wl.batches {
		for _, d := range b {
			totalDeltas++
			if updated, err = wl.inc.ApplyUpdate(updated, d); err != nil {
				return nil, 0, 0, fmt.Errorf("X9: ⊕: %w", err)
			}
		}
	}

	dir, err := os.MkdirTemp("", "pitract-x9-")
	if err != nil {
		return nil, 0, 0, err
	}
	defer os.RemoveAll(dir)

	// Maintain: the log absorbs every batch; no checkpoint between them, so
	// the crash below has the whole history to replay.
	reg := store.NewRegistry(dir)
	reg.SetCheckpointEvery(totalDeltas + 1)
	if _, err := reg.Register("d", wl.inc.Scheme, wl.data); err != nil {
		return nil, 0, 0, fmt.Errorf("X9: register: %w", err)
	}
	maintainNs := timeOp(1, func() {
		for _, b := range wl.batches {
			if _, e := reg.ApplyDelta("d", b); e != nil {
				err = e
				return
			}
		}
	})
	if err != nil {
		return nil, 0, 0, fmt.Errorf("X9: maintain: %w", err)
	}
	st, _ := reg.Get("d")
	if st.Version() != uint64(totalDeltas) {
		return nil, 0, 0, fmt.Errorf("X9: version %d after %d deltas", st.Version(), totalDeltas)
	}
	if err := x9Check(wl, st, updated, "maintained"); err != nil {
		return nil, 0, 0, err
	}

	// Rebuild baseline: the updated dataset preprocessed from scratch.
	var rebuildErr error
	rebuildNs := timeOp(1, func() {
		_, rebuildErr = wl.inc.Scheme.Preprocess(updated)
	})
	if rebuildErr != nil {
		return nil, 0, 0, fmt.Errorf("X9: rebuild: %w", rebuildErr)
	}

	// Crash: drop the registry (its snapshot is still the registration
	// image, every batch lives only in the log) and time the replay a
	// fresh registry runs at Register.
	reg2 := store.NewRegistry(dir)
	var st2 *store.Store
	replayNs := timeOp(1, func() {
		st2, err = reg2.Register("d", wl.inc.Scheme, wl.data)
	})
	if err != nil {
		return nil, 0, 0, fmt.Errorf("X9: recover: %w", err)
	}
	if !st2.WasLoaded() {
		return nil, 0, 0, fmt.Errorf("X9: recovery re-preprocessed instead of replaying")
	}
	if got := reg2.ReplayCount(); got != int64(len(wl.batches)) {
		return nil, 0, 0, fmt.Errorf("X9: replayed %d records, want %d", got, len(wl.batches))
	}
	if st2.Version() != uint64(totalDeltas) {
		return nil, 0, 0, fmt.Errorf("X9: recovered version %d, want %d", st2.Version(), totalDeltas)
	}
	if err := x9Check(wl, st2, updated, "replayed"); err != nil {
		return nil, 0, 0, err
	}

	speedup = rebuildNs / maintainNs
	replayMs = replayNs / 1e6
	row = []interface{}{wl.scheme, len(wl.data), totalDeltas, len(wl.batches),
		maintainNs / 1e6, rebuildNs / 1e6, speedup, replayMs, len(wl.queries)}
	return row, speedup, replayMs, nil
}

// X9FullDynamism measures mixed insert/delete maintenance and delta-log
// crash replay, with in-line differential checks.
func X9FullDynamism(s Scale) (*Table, error) {
	t := &Table{
		ID:    "X9",
		Title: "full dynamism: delete-maintained Π(D ⊕ ∆D) vs rebuild, and delta-log crash replay",
		Columns: []string{"scheme", "size", "deltas", "batches", "maintain ms",
			"rebuild ms", "speedup", "replay ms", "checked"},
	}
	var loads []x9Workload
	for _, n := range s.sizes([]int{512}, []int{4096, 16384}) {
		loads = append(loads, x9PointSelection(n))
	}
	for _, n := range s.sizes([]int{128}, []int{384, 512}) {
		loads = append(loads, x9Reachability(n))
	}
	for _, wl := range loads {
		row, _, _, err := x9Run(wl)
		if err != nil {
			return nil, err
		}
		t.AddRow(row...)
	}
	t.Note("every maintained verdict differentially checked against a from-scratch preprocess of D ⊕ ∆D, before and after replay")
	t.Note("deltas mix inserts with deletions (tombstones / edge retractions); maintain ms covers apply + log append, no checkpoints")
	t.Note("replay ms = registry open over ⟨registration snapshot, full delta log⟩ back to the exact acknowledged version")
	return t, nil
}

// X9DynamismMetrics regenerates X9's point-selection workload at the given
// scale and returns the headline numbers for BENCH_ci.json: the
// delete-maintain speedup over rebuilding and the crash-replay wall time.
func X9DynamismMetrics(s Scale) (speedup, replayMs float64, err error) {
	n := s.sizes([]int{512}, []int{16384})[0]
	_, speedup, replayMs, err = x9Run(x9PointSelection(n))
	return speedup, replayMs, err
}
