package harness

import (
	"math/rand"

	"pitract/internal/circuit"
	"pitract/internal/core"
	"pitract/internal/schemes"
	"pitract/internal/tm"
)

// C8CVP reproduces §4(8)/§6: CVP instances become Π-tractable once the
// circuit-plus-inputs is treated as the data part — evaluate once, answer
// every gate-value query in O(1).
func C8CVP(s Scale) (*Table, error) {
	t := &Table{
		ID:    "C8",
		Title: "CVP: per-query evaluation vs preprocess-once gate values",
		Columns: []string{"gates", "eval-per-query ns", "readout ns/query",
			"preprocess ns", "speedup"},
	}
	gateScheme := schemes.CVPGateValueScheme()
	lang := schemes.CVPGateLanguage()
	var readoutSeries []core.Measurement
	for _, gates := range s.sizes([]int{1 << 8, 1 << 11, 1 << 14},
		[]int{1 << 10, 1 << 13, 1 << 16, 1 << 18}) {
		circ := circuit.Generate(circuit.GenConfig{Inputs: 16, Gates: gates, Seed: int64(gates)})
		inst := &circuit.Instance{Circuit: circ, Inputs: circuit.RandomInputs(16, int64(gates)+1)}
		d := circuit.EncodeInstance(inst)
		rng := rand.New(rand.NewSource(int64(gates)))
		queries := make([][]byte, 64)
		for i := range queries {
			queries[i] = schemes.GateQuery(rng.Intn(circ.Size()))
		}
		var pairs []core.Pair
		for _, q := range queries[:8] {
			pairs = append(pairs, core.Pair{D: d, Q: q})
		}
		if err := gateScheme.VerifyAgainst(lang, pairs); err != nil {
			return nil, err
		}
		var prep []byte
		prepNs := timeOp(1, func() {
			var err error
			prep, err = gateScheme.Preprocess(d)
			if err != nil {
				panic(err)
			}
		})
		qi := 0
		evalNs := timeOp(8, func() {
			_, _ = lang.Contains(d, queries[qi%len(queries)])
			qi++
		})
		readNs := timeOp(4096, func() {
			_, _ = gateScheme.Answer(prep, queries[qi%len(queries)])
			qi++
		})
		t.AddRow(circ.Size(), evalNs, readNs, prepNs, evalNs/readNs)
		readoutSeries = append(readoutSeries, core.Measurement{N: float64(circ.Size()), Cost: readNs})
	}
	t.Note("%s", fitNote("gate-value readout", readoutSeries))
	return t, nil
}

// T9Separation reproduces Theorem 9: under the Υ0 factorization (empty data
// part) preprocessing sees only ε, so per-query cost must grow with the
// instance — in contrast to C8's O(1) readout. The growth fits make the
// separation measurable.
func T9Separation(s Scale) (*Table, error) {
	t := &Table{
		ID:      "T9",
		Title:   "CVP under Υ0 (empty data part): preprocessing cannot help",
		Columns: []string{"gates", "Υ0 ns/query", "refactorized ns/query"},
	}
	noPre := schemes.CVPNoPreprocessScheme()
	gateScheme := schemes.CVPGateValueScheme()
	var upsilon0, refactored []core.Measurement
	for _, gates := range s.sizes([]int{1 << 8, 1 << 11, 1 << 14},
		[]int{1 << 10, 1 << 13, 1 << 16}) {
		circ := circuit.Generate(circuit.GenConfig{Inputs: 12, Gates: gates, Seed: int64(gates)})
		inst := &circuit.Instance{Circuit: circ, Inputs: circuit.RandomInputs(12, 9)}
		d := circuit.EncodeInstance(inst)
		prep, err := gateScheme.Preprocess(d)
		if err != nil {
			return nil, err
		}
		outQuery := schemes.GateQuery(int(circ.Output))
		// Υ0: the whole instance is the query; answered from scratch.
		slowNs := timeOp(8, func() {
			_, _ = noPre.Answer(nil, d)
		})
		fastNs := timeOp(4096, func() {
			_, _ = gateScheme.Answer(prep, outQuery)
		})
		// Agreement.
		a, err := noPre.Answer(nil, d)
		if err != nil {
			return nil, err
		}
		b, err := gateScheme.Answer(prep, outQuery)
		if err != nil {
			return nil, err
		}
		if a != b {
			return nil, errMismatch("T9", 0)
		}
		t.AddRow(circ.Size(), slowNs, fastNs)
		upsilon0 = append(upsilon0, core.Measurement{N: float64(circ.Size()), Cost: slowNs})
		refactored = append(refactored, core.Measurement{N: float64(circ.Size()), Cost: fastNs})
	}
	t.Note("%s", fitNote("Υ0 answering", upsilon0))
	t.Note("%s", fitNote("re-factorized answering", refactored))
	t.Note("polynomial vs constant growth is the Theorem 9 separation, observed")
	return t, nil
}

// T5Chain reproduces Theorem 5 / Corollary 6: decide TM languages through
// the full P → CVP → BDS pipeline, comparing direct simulation against the
// transported Π-scheme.
func T5Chain(s Scale) (*Table, error) {
	t := &Table{
		ID:    "T5",
		Title: "the completeness chain: DTM → Cook–Levin circuit → BDS → Π-scheme",
		Columns: []string{"machine", "n", "circuit gates", "chain prep ns",
			"answer ns/query", "agree"},
	}
	rng := rand.New(rand.NewSource(55))
	for _, cm := range tm.SampleMachines() {
		n := 6
		if cm.M.Name == "palindrome" || cm.M.Name == "0n1n" {
			n = 4
		}
		circ, err := cm.Compile(n)
		if err != nil {
			return nil, err
		}
		scheme := schemes.TMSchemeViaBDS(cm)
		agree := true
		var prepNs, ansNs float64
		samples := 8
		for k := 0; k < samples; k++ {
			in := make([]bool, n)
			for i := range in {
				in[i] = rng.Intn(2) == 1
			}
			x := schemes.EncodeBits(in)
			var prep []byte
			prepNs += timeOp(1, func() {
				var err error
				prep, err = scheme.Preprocess(x)
				if err != nil {
					panic(err)
				}
			})
			var got bool
			ansNs += timeOp(64, func() {
				var err error
				got, err = scheme.Answer(prep, x)
				if err != nil {
					panic(err)
				}
			})
			want := cm.M.Run(in, cm.Bound(n)).Accepted
			if got != want {
				agree = false
			}
		}
		t.AddRow(cm.M.Name, n, circ.Size(), prepNs/float64(samples), ansNs/float64(samples), agree)
		if !agree {
			return nil, errMismatch("T5", 0)
		}
	}
	t.Note("every sample machine's language is decided exactly by the transported BDS scheme (Corollary 6)")
	return t, nil
}
