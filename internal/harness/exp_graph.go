package harness

import (
	"math/rand"

	"pitract/internal/compress"
	"pitract/internal/core"
	"pitract/internal/graph"
	"pitract/internal/inc"
	"pitract/internal/relation"
	"pitract/internal/schemes"
	"pitract/internal/views"
)

// F1BDSFactorizations reproduces Figure 1: the same BDS queries under
// Υ_BDS (preprocess G once, constant-time answering) and Υ′ (preprocess
// nothing, full search per query).
func F1BDSFactorizations(s Scale) (*Table, error) {
	t := &Table{
		ID:    "F1",
		Title: "BDS under Υ_BDS (preprocessed) vs Υ′ (nothing preprocessed)",
		Columns: []string{"|V|", "|E|", "Υ_BDS prep ns", "Υ_BDS ns/query",
			"Υ′ ns/query", "slowdown"},
	}
	idxScheme := schemes.BDSScheme()
	noPre := schemes.BDSNoPreprocessScheme()
	var fast, slow []core.Measurement
	for _, n := range s.sizes([]int{1 << 7, 1 << 9, 1 << 11},
		[]int{1 << 8, 1 << 10, 1 << 12, 1 << 14}) {
		g := graph.RandomConnectedUndirected(n, 3*n, int64(n))
		d := g.Encode()
		rng := rand.New(rand.NewSource(int64(n) + 3))
		queries := make([][]byte, 128)
		instQueries := make([][]byte, len(queries))
		for i := range queries {
			queries[i] = schemes.NodePairQuery(rng.Intn(n), rng.Intn(n))
			instQueries[i] = core.PadPair(d, queries[i])
		}
		var prep []byte
		prepNs := timeOp(1, func() {
			var err error
			prep, err = idxScheme.Preprocess(d)
			if err != nil {
				panic(err)
			}
		})
		// Agreement spot check between the two factorizations.
		for i := 0; i < 8; i++ {
			a, err := idxScheme.Answer(prep, queries[i])
			if err != nil {
				return nil, err
			}
			b, err := noPre.Answer(nil, instQueries[i])
			if err != nil {
				return nil, err
			}
			if a != b {
				return nil, errMismatch("F1", i)
			}
		}
		qi := 0
		fastNs := timeOp(4096, func() {
			_, _ = idxScheme.Answer(prep, queries[qi%len(queries)])
			qi++
		})
		slowNs := timeOp(8, func() {
			_, _ = noPre.Answer(nil, instQueries[qi%len(instQueries)])
			qi++
		})
		t.AddRow(n, g.M(), prepNs, fastNs, slowNs, slowNs/fastNs)
		fast = append(fast, core.Measurement{N: float64(n), Cost: fastNs})
		slow = append(slow, core.Measurement{N: float64(n), Cost: slowNs})
	}
	t.Note("%s", fitNote("Υ_BDS answering", fast))
	t.Note("%s", fitNote("Υ′ answering", slow))
	t.Note("Υ_BDS is Π-tractable; Υ′ re-searches per query — the Figure 1 contrast")
	return t, nil
}

type mismatchErr struct {
	where string
	idx   int
}

func (e *mismatchErr) Error() string {
	return e.where + ": factorizations disagree on query"
}

func errMismatch(where string, idx int) error { return &mismatchErr{where, idx} }

// E3Reachability reproduces Example 3: BFS per query vs the precomputed
// closure matrix.
func E3Reachability(s Scale) (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "reachability: BFS per query vs all-pairs closure",
		Columns: []string{"|V|", "|E|", "closure prep ns", "matrix ns/query", "BFS ns/query", "speedup"},
	}
	idxScheme := schemes.ReachabilityScheme()
	bfsScheme := schemes.ReachabilityBFSScheme()
	var matrixSeries []core.Measurement
	for _, n := range s.sizes([]int{1 << 6, 1 << 8, 1 << 10},
		[]int{1 << 7, 1 << 9, 1 << 11, 1 << 12}) {
		g := graph.RandomDirected(n, 4*n, int64(n))
		d := g.Encode()
		rng := rand.New(rand.NewSource(int64(n)))
		queries := make([][]byte, 128)
		for i := range queries {
			queries[i] = schemes.NodePairQuery(rng.Intn(n), rng.Intn(n))
		}
		var prep []byte
		prepNs := timeOp(1, func() {
			var err error
			prep, err = idxScheme.Preprocess(d)
			if err != nil {
				panic(err)
			}
		})
		for i := 0; i < 8; i++ {
			a, err := idxScheme.Answer(prep, queries[i])
			if err != nil {
				return nil, err
			}
			b, err := bfsScheme.Answer(d, queries[i])
			if err != nil {
				return nil, err
			}
			if a != b {
				return nil, errMismatch("E3", i)
			}
		}
		qi := 0
		matNs := timeOp(4096, func() {
			_, _ = idxScheme.Answer(prep, queries[qi%len(queries)])
			qi++
		})
		bfsNs := timeOp(16, func() {
			_, _ = bfsScheme.Answer(d, queries[qi%len(queries)])
			qi++
		})
		t.AddRow(n, g.M(), prepNs, matNs, bfsNs, bfsNs/matNs)
		matrixSeries = append(matrixSeries, core.Measurement{N: float64(n), Cost: matNs})
	}
	t.Note("%s", fitNote("matrix answering", matrixSeries))
	return t, nil
}

// C5Compression reproduces §4(5): compression ratio and query cost on the
// compressed structure, with answers verified against the original.
func C5Compression(s Scale) (*Table, error) {
	t := &Table{
		ID:    "C5",
		Title: "query-preserving compression for reachability",
		Columns: []string{"|V|", "|E|", "|Vc|", "|Ec|", "vertex ratio",
			"compressed ns/query", "BFS-on-original ns/query"},
	}
	for _, communities := range s.sizes([]int{4, 8, 16}, []int{8, 16, 32, 64}) {
		size := 24
		g := graph.CommunityGraph(communities, size, communities*2, int64(communities))
		c, err := compress.Compress(g)
		if err != nil {
			return nil, err
		}
		n := g.N()
		rng := rand.New(rand.NewSource(int64(n)))
		type qp struct{ u, v int }
		queries := make([]qp, 256)
		for i := range queries {
			queries[i] = qp{rng.Intn(n), rng.Intn(n)}
		}
		// Verify exactness on a sample.
		for _, q := range queries[:32] {
			want := g.Reachable(q.u, q.v)
			got, err := c.Reach(q.u, q.v)
			if err != nil {
				return nil, err
			}
			if got != want {
				return nil, errMismatch("C5", 0)
			}
		}
		qi := 0
		compNs := timeOp(4096, func() {
			_, _ = c.Reach(queries[qi%len(queries)].u, queries[qi%len(queries)].v)
			qi++
		})
		bfsNs := timeOp(16, func() {
			g.Reachable(queries[qi%len(queries)].u, queries[qi%len(queries)].v)
			qi++
		})
		vr, _ := c.Ratio(g)
		t.AddRow(n, g.M(), c.Dc.N(), c.Dc.M(), vr, compNs, bfsNs)
	}
	t.Note("answers on the compressed graph are exact (query-preserving); ratios shrink with community size")
	return t, nil
}

// C7Incremental reproduces §4(7): incremental maintenance cost tracks
// |CHANGED|, not |D|.
func C7Incremental(s Scale) (*Table, error) {
	t := &Table{
		ID:    "C7",
		Title: "bounded incremental reachability maintenance",
		Columns: []string{"|V|", "inserts", "|CHANGED|", "work (words)",
			"recompute (words)", "work/|CHANGED|"},
	}
	for _, n := range s.sizes([]int{1 << 7, 1 << 9, 1 << 11},
		[]int{1 << 8, 1 << 10, 1 << 12, 1 << 13}) {
		g := graph.RandomDirected(n, n, int64(n))
		idx, err := inc.New(g)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(int64(n) + 1))
		inserts := 32
		for i := 0; i < inserts; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			if err := idx.InsertEdge(u, v); err != nil {
				return nil, err
			}
		}
		led := idx.Ledger()
		ratio := float64(led.WorkWords) / float64(maxI64(led.Changed(), 1))
		t.AddRow(n, led.Updates, led.Changed(), led.WorkWords,
			idx.RecomputeCostWords()*int64(led.Updates), ratio)
	}
	t.Note("work per changed pair stays bounded while recompute cost grows with |D| — the Ramalingam–Reps criterion")
	return t, nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// c6impl is the body of C6Views (declared in exp_basics.go for the table
// shape): materialized views vs base-relation scans.
func c6impl(t *Table, s Scale) (*Table, error) {
	for _, n := range s.sizes([]int{1 << 10, 1 << 13, 1 << 16}, []int{1 << 12, 1 << 15, 1 << 18}) {
		rel := relation.Generate(relation.GenConfig{Rows: n, Seed: int64(n), KeyMax: int64(n)})
		// Views cover a narrow hot range: 1/16th of the key space.
		hotHi := int64(n / 16)
		set, err := views.Materialize(rel, []views.Def{
			{Name: "hot", Attr: "key", Lo: 0, Hi: hotHi},
		})
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(int64(n)))
		queries := make([]int64, 128)
		for i := range queries {
			queries[i] = rng.Int63n(hotHi + 1)
		}
		// Exactness against the base relation.
		for _, c := range queries[:16] {
			want, err := rel.ScanPointSelect("key", relation.Int(c))
			if err != nil {
				return nil, err
			}
			got, err := set.AnswerPoint("key", c)
			if err != nil {
				return nil, err
			}
			if got != want {
				return nil, errMismatch("C6", 0)
			}
		}
		qi := 0
		baseNs := timeOp(16, func() {
			_, _ = rel.ScanPointSelect("key", relation.Int(queries[qi%len(queries)]))
			qi++
		})
		viewNs := timeOp(4096, func() {
			_, _ = set.AnswerPoint("key", queries[qi%len(queries)])
			qi++
		})
		t.AddRow(n, set.TotalRows(), baseNs, viewNs, baseNs/viewNs)
	}
	t.Note("|V(D)| ≪ |D|: queries covered by views never touch the base relation")
	return t, nil
}
