package harness

import (
	"math/rand"

	"pitract/internal/core"
	"pitract/internal/graph"
	"pitract/internal/lca"
	"pitract/internal/rmq"
	"pitract/internal/vc"
)

// C3RMQ reproduces §4(3): naive scanning vs the Fischer–Heun structure.
func C3RMQ(s Scale) (*Table, error) {
	t := &Table{
		ID:    "C3",
		Title: "minimum range queries on static arrays",
		Columns: []string{"n", "naive ns/query", "sparse ns/query",
			"fischer-heun ns/query", "FH aux words"},
	}
	var fhSeries []core.Measurement
	for _, n := range s.sizes([]int{1 << 10, 1 << 13, 1 << 16},
		[]int{1 << 12, 1 << 15, 1 << 18, 1 << 20}) {
		rng := rand.New(rand.NewSource(int64(n)))
		a := make([]int64, n)
		for i := range a {
			a[i] = rng.Int63n(1 << 20)
		}
		naive := rmq.NewNaive(a)
		sparse := rmq.NewSparse(a)
		fh := rmq.NewFischerHeun(a, 0)
		type qr struct{ i, j int }
		queries := make([]qr, 128)
		for k := range queries {
			i := rng.Intn(n)
			queries[k] = qr{i, i + rng.Intn(n-i)}
		}
		// Exactness sample.
		for _, q := range queries[:16] {
			if fh.Query(q.i, q.j) != naive.Query(q.i, q.j) ||
				sparse.Query(q.i, q.j) != naive.Query(q.i, q.j) {
				return nil, errMismatch("C3", 0)
			}
		}
		qi := 0
		naiveNs := timeOp(32, func() {
			naive.Query(queries[qi%len(queries)].i, queries[qi%len(queries)].j)
			qi++
		})
		sparseNs := timeOp(4096, func() {
			sparse.Query(queries[qi%len(queries)].i, queries[qi%len(queries)].j)
			qi++
		})
		fhNs := timeOp(4096, func() {
			fh.Query(queries[qi%len(queries)].i, queries[qi%len(queries)].j)
			qi++
		})
		t.AddRow(n, naiveNs, sparseNs, fhNs, fh.Words())
		fhSeries = append(fhSeries, core.Measurement{N: float64(n), Cost: fhNs})
	}
	t.Note("%s", fitNote("fischer-heun answering", fhSeries))
	return t, nil
}

// C4LCA reproduces §4(4): O(1) LCA lookups after preprocessing, for trees
// (Euler tour + RMQ) and DAGs (all-pairs table).
func C4LCA(s Scale) (*Table, error) {
	t := &Table{
		ID:    "C4",
		Title: "lowest common ancestors in trees and DAGs",
		Columns: []string{"kind", "n", "prep ns", "indexed ns/query",
			"naive ns/query", "speedup"},
	}
	var treeSeries []core.Measurement
	for _, n := range s.sizes([]int{1 << 10, 1 << 13, 1 << 16},
		[]int{1 << 12, 1 << 15, 1 << 18}) {
		rng := rand.New(rand.NewSource(int64(n)))
		parent := make([]int, n)
		for v := 1; v < n; v++ {
			parent[v] = rng.Intn(v)
		}
		var tree *lca.Tree
		prepNs := timeOp(1, func() {
			var err error
			tree, err = lca.NewTree(parent, 0)
			if err != nil {
				panic(err)
			}
		})
		type qp struct{ u, v int }
		queries := make([]qp, 128)
		for i := range queries {
			queries[i] = qp{rng.Intn(n), rng.Intn(n)}
		}
		for _, q := range queries[:16] {
			got, err := tree.LCA(q.u, q.v)
			if err != nil {
				return nil, err
			}
			if got != lca.NaiveLCA(parent, q.u, q.v) {
				return nil, errMismatch("C4-tree", 0)
			}
		}
		qi := 0
		fastNs := timeOp(4096, func() {
			_, _ = tree.LCA(queries[qi%len(queries)].u, queries[qi%len(queries)].v)
			qi++
		})
		naiveNs := timeOp(256, func() {
			lca.NaiveLCA(parent, queries[qi%len(queries)].u, queries[qi%len(queries)].v)
			qi++
		})
		t.AddRow("tree", n, prepNs, fastNs, naiveNs, naiveNs/fastNs)
		treeSeries = append(treeSeries, core.Measurement{N: float64(n), Cost: fastNs})
	}
	// DAG variant at smaller sizes (cubic preprocessing).
	for _, n := range s.sizes([]int{32, 64}, []int{64, 128, 256}) {
		adjGraph := graph.RandomDAG(n, 3*n, int64(n))
		adj := make([][]int, n)
		for u := 0; u < n; u++ {
			for _, v := range adjGraph.Neighbors(u) {
				adj[u] = append(adj[u], int(v))
			}
		}
		var d *lca.DAG
		prepNs := timeOp(1, func() {
			var err error
			d, err = lca.NewDAG(adj)
			if err != nil {
				panic(err)
			}
		})
		rng := rand.New(rand.NewSource(int64(n)))
		type qp struct{ u, v int }
		queries := make([]qp, 64)
		for i := range queries {
			queries[i] = qp{rng.Intn(n), rng.Intn(n)}
		}
		qi := 0
		fastNs := timeOp(4096, func() {
			_, _, _ = d.LCA(queries[qi%len(queries)].u, queries[qi%len(queries)].v)
			qi++
		})
		naiveNs := timeOp(4, func() {
			_, _, _ = lca.NaiveDAGLCA(adj, queries[qi%len(queries)].u, queries[qi%len(queries)].v)
			qi++
		})
		t.AddRow("dag", n, prepNs, fastNs, naiveNs, naiveNs/fastNs)
	}
	t.Note("%s", fitNote("tree LCA answering", treeSeries))
	return t, nil
}

// C9VertexCover reproduces §4(9): for fixed K, kernelization makes the
// decision cost independent of |G|.
func C9VertexCover(s Scale) (*Table, error) {
	t := &Table{
		ID:    "C9",
		Title: "vertex cover ≤ K via Buss kernelization (fixed K)",
		Columns: []string{"|V|", "|E|", "K", "kernel edges", "kernel+search ns",
			"answer"},
	}
	k := 4
	var kernelSeries []core.Measurement
	for _, n := range s.sizes([]int{1 << 8, 1 << 10, 1 << 12},
		[]int{1 << 9, 1 << 11, 1 << 13, 1 << 15}) {
		g := vc.PlantCover(n, k, 5*n, int64(n))
		ker, err := vc.Kernelize(g, k)
		if err != nil {
			return nil, err
		}
		decideNs := timeOp(8, func() {
			_, _ = vc.Decide(g, k)
		})
		ans, err := vc.Decide(g, k)
		if err != nil {
			return nil, err
		}
		kernelEdges := len(ker.Edges)
		t.AddRow(n, g.M(), k, kernelEdges, decideNs, ans)
		kernelSeries = append(kernelSeries, core.Measurement{N: float64(n), Cost: float64(kernelEdges)})
	}
	t.Note("%s", fitNote("kernel size", kernelSeries))
	t.Note("kernel size is bounded by K² regardless of |G| — the §4(9) claim")
	return t, nil
}
