package harness

import (
	"math/rand"

	"pitract/internal/core"
	"pitract/internal/schemes"
	"pitract/internal/tm"
	"pitract/internal/views"
)

// F2Landscape renders Figure 2 as a registry of every implemented query
// class with its class placement and scheme witness.
func F2Landscape(Scale) (*Table, error) {
	var r core.Registry
	entries := []core.Entry{
		{Name: "point selection (Q1)", PaperRef: "Example 1, §4(1)", Class: core.ClassPiT0Q,
			Scheme: schemes.PointSelectionScheme(), Notes: "B⁺-tree / sorted keys"},
		{Name: "range selection", PaperRef: "§4(1)", Class: core.ClassPiT0Q,
			Scheme: schemes.RangeSelectionScheme(), Notes: "sorted keys"},
		{Name: "list membership (L1)", PaperRef: "§4(2)", Class: core.ClassPiT0Q,
			Scheme: schemes.ListMembershipScheme(),
			Notes:  "sort + binary search; the sort itself is NC (pram.BitonicSort), so the class is NC end-to-end"},
		{Name: "reachability (Q2)", PaperRef: "Example 3", Class: core.ClassPiT0Q,
			Scheme: schemes.ReachabilityScheme(), Notes: "NL ⊆ NC; closure matrix gives O(1)"},
		{Name: "minimum range queries", PaperRef: "§4(3)", Class: core.ClassPiT0Q,
			Scheme: schemes.RMQFuncScheme().Decision(),
			Notes:  "sparse table (function scheme §8(3)); Fischer–Heun in internal/rmq"},
		{Name: "lowest common ancestors", PaperRef: "§4(4)", Class: core.ClassPiT0Q,
			Scheme: schemes.LCAFuncScheme().Decision(),
			Notes:  "all-pairs table (function scheme §8(3)); Euler+RMQ in internal/lca"},
		{Name: "point selection via views (λ)", PaperRef: "§4(6), Def. 1 remark", Class: core.ClassPiT0Q,
			Scheme: schemes.ViewRewritingScheme(views.EvenPartition("key", 0, 1<<20, 8)).Plain(),
			Notes:  "query rewriting λ over materialized views"},
		{Name: "top-k with early termination", PaperRef: "§8(5)", Class: core.ClassPiTQ,
			Notes: "Fagin/TA; witnessed in internal/topk"},
		{Name: "BDS queries (Υ_BDS)", PaperRef: "Example 5, Theorem 5", Class: core.ClassPiTQ,
			Scheme: schemes.BDSScheme(), Notes: "ΠTP-complete; Π-tractable after factorization"},
		{Name: "CVP gate values", PaperRef: "§4(8), §6", Class: core.ClassPiTQ,
			Scheme: schemes.CVPGateValueScheme(), Notes: "made Π-tractable by re-factorization"},
		{Name: "CVP under Υ0", PaperRef: "§7, Theorem 9", Class: core.ClassP,
			Notes: "not Π-tractable unless P = NC"},
		{Name: "vertex cover (fixed K)", PaperRef: "§4(9)", Class: core.ClassPiTQ,
			Notes: "Buss kernelization; witnessed in internal/vc"},
		{Name: "vertex cover (general)", PaperRef: "Corollary 7", Class: core.ClassNPComplete,
			Notes: "not Π-tractable unless P = NP"},
	}
	for i := range entries {
		// ΠT⁰Q entries registered without a byte-level scheme are recorded
		// as ΠTQ-class rows with substrate witnesses; the registry enforces
		// that ΠT⁰Q claims carry schemes.
		e := entries[i]
		if e.Class == core.ClassPiT0Q && e.Scheme == nil {
			e.Class = core.ClassPiTQ
		}
		if err := r.Register(e); err != nil {
			return nil, err
		}
	}
	t := &Table{
		ID:      "F2",
		Title:   "the Figure 2 landscape: NC ⊆ ΠT⁰Q ⊆ ΠTQ = ΠTP = P (problems)",
		Columns: []string{"query class", "paper", "class", "witness / note"},
	}
	for _, e := range r.Entries() {
		witness := e.Notes
		if e.Scheme != nil {
			witness = e.Scheme.SchemeName + "; " + e.Notes
		}
		t.AddRow(e.Name, e.PaperRef, e.Class.String(), witness)
	}
	t.Note("inclusions NC ⊆ ΠT⁰Q ⊆ P hold by construction; ΠT⁰Q ⊂ P unless P = NC (Theorem 9)")
	return t, nil
}

// L2Composition exercises Lemma 2 end to end on real problems: compose the
// parity machine's reduction to BDS with BDS's identity-style reduction
// into itself, and verify the composite on concrete instances.
func L2Composition(s Scale) (*Table, error) {
	t := &Table{
		ID:      "L2",
		Title:   "transitivity of ≤NC_fa: composing reductions via padding",
		Columns: []string{"stage", "instances", "verified"},
	}
	cm := tm.Parity()
	// r1: L(parity) ≤ BDS with the identity factorization source.
	fr1 := schemes.TMToBDSReduction(cm)
	rng := rand.New(rand.NewSource(77))
	var instances [][]byte
	for k := 0; k < 12; k++ {
		n := rng.Intn(6)
		in := make([]bool, n)
		for i := range in {
			in[i] = rng.Intn(2) == 1
		}
		instances = append(instances, schemes.EncodeBits(in))
	}
	if err := fr1.Verify(instances); err != nil {
		return nil, err
	}
	t.AddRow("r1: L(parity) → BDS", len(instances), true)

	// r2: BDS → BDS relabelling all vertices by +0 (identity maps) but
	// sourced at the PADDED factorization of BDS, so composition needs the
	// Lemma 2 plumbing.
	bdsPadded := core.PaddedFactorization(schemes.BDSFactorization())
	r2 := &core.Reduction{
		RedName: "bds-pass-through",
		Alpha: func(d []byte) ([]byte, error) {
			gBytes, _, err := core.UnpadPair(d)
			if err != nil {
				return nil, err
			}
			return gBytes, nil
		},
		Beta: func(q []byte) ([]byte, error) {
			_, pair, err := core.UnpadPair(q)
			if err != nil {
				return nil, err
			}
			return pair, nil
		},
	}
	composed := core.Compose(&fr1.Map, schemes.BDSFactorization().Rho, bdsPadded, r2)
	frComposed := &core.FactorReduction{
		From: fr1.From,
		To:   schemes.BDSProblem(),
		F1:   core.PaddedFactorization(core.IdentityFactorization()),
		F2:   schemes.BDSFactorization(),
		Map:  *composed,
	}
	if err := frComposed.Verify(instances); err != nil {
		return nil, err
	}
	t.AddRow("r2∘r1 via Lemma 2 padding", len(instances), true)

	// Lemma 3: transport BDS's scheme across the composite and decide the
	// parity language with it.
	scheme := core.TransportScheme(composed, schemes.BDSScheme())
	lang := core.PairLanguage(fr1.From, core.PaddedFactorization(core.IdentityFactorization()))
	var pairs []core.Pair
	padded := core.PaddedFactorization(core.IdentityFactorization())
	for _, x := range instances {
		d, err := padded.Pi1(x)
		if err != nil {
			return nil, err
		}
		pairs = append(pairs, core.Pair{D: d, Q: d})
	}
	if err := scheme.VerifyAgainst(lang, pairs); err != nil {
		return nil, err
	}
	t.AddRow("Lemma 3 transport of BDS scheme", len(pairs), true)
	t.Note("the composed reduction and the transported scheme both verified on all instances")
	return t, nil
}

// P10FReductions exercises §7: F-reductions (no re-factorization) among
// Π-tractable languages are verified, and the CVP/Υ0 language is shown to
// answer only by per-query evaluation (the Proposition 10 landscape).
func P10FReductions(s Scale) (*Table, error) {
	t := &Table{
		ID:      "P10",
		Title:   "F-reductions between fixed languages of pairs",
		Columns: []string{"reduction", "pairs", "verified"},
	}
	// F-reduction: list membership ≤NC_F point selection. α turns the list
	// into a single-column relation; β forwards the probe value.
	red := &core.Reduction{
		RedName: "list→relation",
		Alpha: func(d []byte) ([]byte, error) {
			list, err := schemes.DecodeList(d)
			if err != nil {
				return nil, err
			}
			return schemes.RelationFromKeys(list), nil
		},
		Beta: func(q []byte) ([]byte, error) { return q, nil },
	}
	rng := rand.New(rand.NewSource(5))
	var pairs []core.Pair
	for k := 0; k < 30; k++ {
		n := rng.Intn(50)
		list := make([]int64, n)
		for i := range list {
			list[i] = rng.Int63n(64)
		}
		pairs = append(pairs, core.Pair{
			D: schemes.EncodeList(list),
			Q: schemes.PointQuery(rng.Int63n(80)),
		})
	}
	if err := red.Verify(schemes.ListMembershipLanguage(), schemes.SelectionLanguage(), pairs); err != nil {
		return nil, err
	}
	t.AddRow("list-membership ≤NC_F point-selection", len(pairs), true)

	// Lemma 8 compatibility: transport the point-selection scheme back to
	// list membership.
	transported := core.TransportScheme(red, schemes.PointSelectionScheme())
	if err := transported.VerifyAgainst(schemes.ListMembershipLanguage(), pairs); err != nil {
		return nil, err
	}
	t.AddRow("Lemma 8 transport (ΠT⁰Q compatibility)", len(pairs), true)

	// Reachability ≤NC_F BDS is NOT attempted: directed reachability and
	// undirected visit order are different classes, and fabricating it
	// would re-factorize — exactly what F-reductions forbid. Noted for the
	// record.
	t.Note("F-reductions preserve factorizations; ΠT⁰Q-completeness under ≤NC_F is open (tied to P vs NC)")
	return t, nil
}
