package harness

// X10 measures the succinct-Π story end-to-end on the community-shaped
// harness graph: the 2-hop reachability labeling built on the compressed
// DAG versus the dense n²-bit closure matrix — artifact bytes, snapshot
// bytes, and per-probe answer latency through each scheme's prepared
// form. Every labeled verdict is checked against the dense oracle
// in-line, and the headline claim — at least a 2× snapshot-bytes
// reduction on this graph shape — is asserted, not just reported.

import (
	"fmt"
	"math/rand"

	"pitract/internal/graph"
	"pitract/internal/schemes"
	"pitract/internal/store"
)

// x10Row is one graph size's measurements.
type x10Row struct {
	n                    int
	densePd, labelPd     int
	denseSnap, labelSnap int
	denseNs, labelNs     float64
	probes               int
}

// x10Run builds both artifacts on the X4 community shape, differentially
// verifies every probe, and measures sizes and probe latencies.
func x10Run(n, probeCount int) (x10Row, error) {
	dense := schemes.ReachabilityScheme()
	labels := schemes.ReachabilityLabelsScheme()
	// The X4 community shape: clustered blocks with a sparse cross-cut —
	// exactly the regime where SCC condensation + twin merging bites.
	g := graph.CommunityGraph(8, n/8, n/4, int64(n))
	data := g.Encode()

	densePd, err := dense.Preprocess(data)
	if err != nil {
		return x10Row{}, fmt.Errorf("X10: dense preprocess: %w", err)
	}
	labelPd, err := labels.Preprocess(data)
	if err != nil {
		return x10Row{}, fmt.Errorf("X10: labels preprocess: %w", err)
	}
	denseAns, err := dense.Prepare(densePd)
	if err != nil {
		return x10Row{}, fmt.Errorf("X10: dense prepare: %w", err)
	}
	labelAns, err := labels.Prepare(labelPd)
	if err != nil {
		return x10Row{}, fmt.Errorf("X10: labels prepare: %w", err)
	}

	snap := func(name string, pd []byte) int {
		return len(store.EncodeSnapshot(&store.Snapshot{SchemeName: name, Prep: pd}))
	}
	row := x10Row{
		n: g.N(), densePd: len(densePd), labelPd: len(labelPd),
		denseSnap: snap(dense.Name(), densePd), labelSnap: snap(labels.Name(), labelPd),
		probes: probeCount,
	}

	rng := rand.New(rand.NewSource(int64(n) + 73))
	probes := make([][]byte, probeCount)
	for i := range probes {
		probes[i] = schemes.NodePairQuery(rng.Intn(g.N()), rng.Intn(g.N()))
	}
	// In-line differential: every labeled verdict against the dense oracle.
	for i, q := range probes {
		want, err := denseAns.Answer(q)
		if err != nil {
			return x10Row{}, fmt.Errorf("X10: dense probe %d: %w", i, err)
		}
		got, err := labelAns.Answer(q)
		if err != nil {
			return x10Row{}, fmt.Errorf("X10: label probe %d: %w", i, err)
		}
		if got != want {
			return x10Row{}, fmt.Errorf("X10: probe %d: labels %v, dense %v — differential failure", i, got, want)
		}
	}

	i := 0
	row.denseNs = timeOp(probeCount, func() {
		denseAns.Answer(probes[i%probeCount])
		i++
	})
	i = 0
	row.labelNs = timeOp(probeCount, func() {
		labelAns.Answer(probes[i%probeCount])
		i++
	})

	if ratio := float64(row.denseSnap) / float64(row.labelSnap); ratio < 2 {
		return x10Row{}, fmt.Errorf("X10: n=%d: labels snapshot is only %.2f× smaller than dense, want ≥2×", n, ratio)
	}
	return row, nil
}

// X10Succinct compares dense and labeled reachability artifacts and probes.
func X10Succinct(s Scale) (*Table, error) {
	t := &Table{
		ID:    "X10",
		Title: "succinct Π: 2-hop labels on the compressed DAG vs the dense closure matrix",
		Columns: []string{"vertices", "dense Π B", "labels Π B", "Π ratio",
			"dense snap B", "labels snap B", "snap ratio", "dense probe ns", "label probe ns", "probes"},
	}
	probeCount := 512
	if s == Full {
		probeCount = 4096
	}
	for _, n := range s.sizes([]int{128, 256}, []int{256, 512, 1024}) {
		row, err := x10Run(n, probeCount)
		if err != nil {
			return nil, err
		}
		t.AddRow(row.n, row.densePd, row.labelPd, float64(row.densePd)/float64(row.labelPd),
			row.denseSnap, row.labelSnap, float64(row.denseSnap)/float64(row.labelSnap),
			row.denseNs, row.labelNs, row.probes)
	}
	t.Note("every labeled verdict differentially verified against the dense closure in-line")
	t.Note("labels Π = SCC condensation + false-twin merge, then a 2-hop (PLL) labeling of the compressed DAG")
	t.Note("snap B = the v3 snapshot file size; the ≥2× reduction is asserted, not just reported")
	return t, nil
}

// X10SuccinctMetrics regenerates X10's largest workload at the given scale
// and returns the headline numbers for BENCH_ci.json: the dense/labels
// snapshot-bytes ratio and the labeled-probe latency next to the dense
// probe it replaces.
func X10SuccinctMetrics(s Scale) (snapRatio, labelProbeNs, denseProbeNs float64, err error) {
	sizes := s.sizes([]int{256}, []int{1024})
	row, err := x10Run(sizes[0], 512)
	if err != nil {
		return 0, 0, 0, err
	}
	return float64(row.denseSnap) / float64(row.labelSnap), row.labelNs, row.denseNs, nil
}
