package harness

// X3 measures the serving subsystem end-to-end: the same preprocessed
// store answered three ways — direct Answer calls in-process, single
// queries over the HTTP JSON API, and batches over the HTTP API riding the
// AnswerBatch worker pool. The spread between the rows is the price of the
// network/JSON envelope; the batch row shows how amortizing it over a
// batch recovers most of the in-process throughput.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"time"

	"pitract/internal/graph"
	"pitract/internal/schemes"
	"pitract/internal/server"
	"pitract/internal/store"
)

// X3Serving serves reachability queries over HTTP and compares throughput
// against direct in-process Answer calls on the identical store.
func X3Serving(s Scale) (*Table, error) {
	t := &Table{
		ID:    "X3",
		Title: "served queries: HTTP API vs direct Answer calls (reachability)",
		Columns: []string{"vertices", "queries", "path", "total ms",
			"µs/query", "qps", "vs direct"},
	}
	workers := Parallelism()
	queryCount := 256
	if s == Full {
		queryCount = 1024
	}

	for _, n := range s.sizes([]int{128, 256}, []int{256, 512, 1024}) {
		g := graph.RandomDirected(n, 4*n, int64(n))
		reg := store.NewRegistry("")
		srv := server.New(reg, nil)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("X3: listen: %w", err)
		}
		serveErr := make(chan error, 1)
		go func() { serveErr <- srv.Serve(ln) }()
		base := "http://" + ln.Addr().String()
		client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: workers + 1}}

		id := fmt.Sprintf("graph-%d", n)
		if err := postX3(client, base+"/v1/datasets", server.RegisterRequest{
			ID: id, Scheme: "reachability/closure-matrix", Data: g.Encode(),
		}, nil); err != nil {
			return nil, fmt.Errorf("X3: register: %w", err)
		}
		st, ok := reg.Get(id)
		if !ok {
			return nil, fmt.Errorf("X3: dataset %s missing after registration", id)
		}

		rng := rand.New(rand.NewSource(int64(n) + 23))
		queries := make([][]byte, queryCount)
		for i := range queries {
			queries[i] = schemes.NodePairQuery(rng.Intn(n), rng.Intn(n))
		}

		// Path 1: direct in-process Answer calls (the X2 baseline).
		direct := make([]bool, queryCount)
		directNs := timeOp(1, func() {
			for i, q := range queries {
				direct[i], err = st.Answer(q)
				if err != nil {
					return
				}
			}
		})
		if err != nil {
			return nil, fmt.Errorf("X3: direct answer: %w", err)
		}

		// Path 2: one HTTP request per query.
		single := make([]bool, queryCount)
		singleNs := timeOp(1, func() {
			for i, q := range queries {
				var resp server.QueryResponse
				if err = postX3(client, base+"/v1/query",
					server.QueryRequest{Dataset: id, Query: q}, &resp); err != nil {
					return
				}
				single[i] = resp.Answer
			}
		})
		if err != nil {
			return nil, fmt.Errorf("X3: http single: %w", err)
		}

		// Path 3: one batch request riding the AnswerBatch pool.
		var batch []bool
		batchNs := timeOp(1, func() {
			var resp server.BatchResponse
			if err = postX3(client, base+"/v1/query/batch", server.BatchRequest{
				Dataset: id, Queries: queries, Parallelism: workers,
			}, &resp); err != nil {
				return
			}
			batch = resp.Answers
		})
		if err != nil {
			return nil, fmt.Errorf("X3: http batch: %w", err)
		}

		for i := range queries {
			if single[i] != direct[i] || batch[i] != direct[i] {
				return nil, fmt.Errorf("X3: query %d diverged (direct %v, single %v, batch %v)",
					i, direct[i], single[i], batch[i])
			}
		}

		for _, row := range []struct {
			path string
			ns   float64
		}{
			{"direct Answer", directNs},
			{"HTTP single", singleNs},
			{"HTTP batch", batchNs},
		} {
			perQuery := row.ns / float64(queryCount)
			t.AddRow(n, queryCount, row.path, row.ns/1e6, perQuery/1e3,
				1e9*float64(queryCount)/row.ns, row.ns/directNs)
		}

		client.CloseIdleConnections()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err = srv.Shutdown(shutdownCtx)
		cancel()
		if err != nil {
			return nil, fmt.Errorf("X3: shutdown: %w", err)
		}
		if err := <-serveErr; err != nil {
			return nil, fmt.Errorf("X3: serve: %w", err)
		}
	}
	t.Note("all three paths verified to return identical verdicts from one preprocessed store")
	t.Note("HTTP single pays the per-request envelope; HTTP batch amortizes it across the batch")
	return t, nil
}

// postX3 posts v as JSON and decodes the response into out (ignored when
// nil); non-200 statuses become errors carrying the server's message.
func postX3(client *http.Client, url string, v, out interface{}) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, e.Error)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
