package harness

// X6 measures the hot-path query engine: the same prepared store answered
// with and without the answer cache in front, under three request mixes —
// hot (one query repeated, the thundering-herd shape), zipf (a skewed mix
// where a small head of queries carries most of the traffic, the shape
// real serving sees), and cold (every query distinct, the cache's worst
// case). Two schemes bracket the answer-cost spectrum: the BFS-per-query
// baseline (O(|V|+|E|) per answer — caching pays enormously) and the
// closure matrix (O(1) word probe — a cache hit costs about as much as the
// answer itself, so the table keeps the engine honest about when caching
// is and is not worth it). Every cached verdict is differentially checked
// against the uncached store in-line; any divergence fails the experiment.

import (
	"fmt"
	"math/rand"

	"pitract/internal/cache"
	"pitract/internal/graph"
	"pitract/internal/schemes"
	"pitract/internal/store"
)

// x6Row is one measured (size, scheme, mix) cell.
type x6Row struct {
	n          int
	scheme     string
	mix        string
	queries    int
	uncachedNs float64
	cachedNs   float64
	hitPct     float64
}

// x6Schemes names the two schemes bracketing the answer-cost spectrum.
var x6Schemes = []string{"reachability/bfs-per-query", "reachability/closure-matrix"}

// x6Measure runs the workload and returns the measured rows.
func x6Measure(s Scale) ([]x6Row, error) {
	queryCount := 512
	if s == Full {
		queryCount = 2048
	}
	var rows []x6Row
	for _, n := range s.sizes([]int{96}, []int{192, 384}) {
		g := graph.CommunityGraph(6, n/6, n/2, int64(n))
		for _, schemeName := range x6Schemes {
			var scheme = schemes.ReachabilityBFSScheme()
			if schemeName == "reachability/closure-matrix" {
				scheme = schemes.ReachabilityScheme()
			}
			reg := store.NewRegistry("")
			st, err := reg.Register(fmt.Sprintf("x6-%d", n), scheme, g.Encode())
			if err != nil {
				return nil, fmt.Errorf("X6: register: %w", err)
			}

			// The query universe: distinct node pairs, seeded.
			rng := rand.New(rand.NewSource(int64(n) + 41))
			universe := make([][]byte, queryCount)
			for i := range universe {
				universe[i] = schemes.NodePairQuery(rng.Intn(g.N()), rng.Intn(g.N()))
			}
			zipf := rand.NewZipf(rng, 1.4, 4, uint64(len(universe)-1))

			for _, mix := range []string{"hot", "zipf", "cold"} {
				queries := make([][]byte, queryCount)
				for i := range queries {
					switch mix {
					case "hot":
						queries[i] = universe[0]
					case "zipf":
						queries[i] = universe[zipf.Uint64()]
					default:
						queries[i] = universe[i]
					}
				}

				// Path 1: the uncached (prepared) store.
				uncached := make([]bool, queryCount)
				uncachedNs := timeOp(1, func() {
					for i, q := range queries {
						uncached[i], err = st.Answer(q)
						if err != nil {
							return
						}
					}
				})
				if err != nil {
					return nil, fmt.Errorf("X6: uncached answer: %w", err)
				}

				// Path 2: the same store behind a cold answer cache.
				c := cache.New(1 << 22)
				cd := store.NewCachedDataset(st, c)
				cachedAns := make([]bool, queryCount)
				cachedNs := timeOp(1, func() {
					for i, q := range queries {
						cachedAns[i], err = cd.Answer(q)
						if err != nil {
							return
						}
					}
				})
				if err != nil {
					return nil, fmt.Errorf("X6: cached answer: %w", err)
				}
				for i := range queries {
					if uncached[i] != cachedAns[i] {
						return nil, fmt.Errorf("X6: %s/%s query %d diverged (uncached %v, cached %v)",
							schemeName, mix, i, uncached[i], cachedAns[i])
					}
				}
				cs := c.Stats()
				total := cs.Hits + cs.Misses + cs.Coalesced
				hitPct := 0.0
				if total > 0 {
					hitPct = 100 * float64(cs.Hits) / float64(total)
				}
				rows = append(rows, x6Row{
					n: n, scheme: schemeName, mix: mix, queries: queryCount,
					uncachedNs: uncachedNs, cachedNs: cachedNs, hitPct: hitPct,
				})
			}
		}
	}
	return rows, nil
}

// X6HotPath renders the hot-path cache experiment.
func X6HotPath(s Scale) (*Table, error) {
	t := &Table{
		ID:    "X6",
		Title: "hot-path answer cache: cached vs uncached QPS over hot/zipf/cold mixes",
		Columns: []string{"vertices", "scheme", "mix", "queries",
			"uncached qps", "cached qps", "speedup", "hit %"},
	}
	rows, err := x6Measure(s)
	if err != nil {
		return nil, err
	}
	var headline float64
	for _, r := range rows {
		qpsU := 1e9 * float64(r.queries) / r.uncachedNs
		qpsC := 1e9 * float64(r.queries) / r.cachedNs
		speedup := r.uncachedNs / r.cachedNs
		if r.scheme == "reachability/bfs-per-query" && r.mix == "hot" && speedup > headline {
			headline = speedup
		}
		t.AddRow(r.n, r.scheme, r.mix, r.queries, qpsU, qpsC, speedup, r.hitPct)
	}
	t.Note("every cached verdict differentially checked against the uncached store in-line")
	t.Note("repeated-query (bfs, hot) speedup: %.1fx — the verdict cache turns O(|V|+|E|) re-answers into LRU hits", headline)
	t.Note("closure rows keep the engine honest: an O(1) word probe costs about as much as a cache hit, so caching buys little there")
	return t, nil
}

// X6CachedSpeedup reports the headline repeated-query numbers — the
// BFS-per-query hot-mix speedup and its cache hit ratio — for
// BenchmarkX6's metrics, so BENCH_ci.json tracks them from this PR on.
func X6CachedSpeedup(s Scale) (speedup, hitRatio float64, err error) {
	rows, err := x6Measure(s)
	if err != nil {
		return 0, 0, err
	}
	for _, r := range rows {
		if r.scheme == "reachability/bfs-per-query" && r.mix == "hot" {
			if sp := r.uncachedNs / r.cachedNs; sp > speedup {
				speedup, hitRatio = sp, r.hitPct/100
			}
		}
	}
	return speedup, hitRatio, nil
}
