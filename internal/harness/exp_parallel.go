package harness

// The X experiments measure the concurrent execution engine added on top
// of the paper reproduction: X1 substitutes the goroutine-backed PRAM
// executor for the sequential oracle on the closure workload and verifies
// the substitution rule (identical results, rounds, and work — only host
// wall-clock may change); X2 serves query batches through the AnswerBatch
// worker pool against one preprocessed store, the paper's
// preprocess-once/answer-many mode under concurrency. Both report
// sequential-vs-parallel wall-clock; the speedup column approaches the
// worker count on multi-core hosts and ~1.0 on a single core.

import (
	"fmt"
	"math/rand"

	"pitract/internal/core"
	"pitract/internal/graph"
	"pitract/internal/pram"
	"pitract/internal/schemes"
)

// X1ParallelPRAM runs transitive closure — the widest PRAM program in the
// repository, n³ activations per squaring round — on both executors and
// reports rounds, work, and wall-clock for each.
func X1ParallelPRAM(s Scale) (*Table, error) {
	t := &Table{
		ID:    "X1",
		Title: "parallel PRAM executor vs the sequential oracle (transitive closure)",
		Columns: []string{"n", "rounds", "work", "seq ms", "par ms",
			"speedup", "workers"},
	}
	workers := Parallelism()
	for _, n := range s.sizes([]int{16, 32, 48}, []int{32, 64, 96, 128}) {
		adj := pram.NewBoolMatrix(n)
		for i := 0; i+1 < n; i++ {
			adj.Set(i, i+1, true) // a path: worst-case diameter
		}
		rng := rand.New(rand.NewSource(int64(n)))
		for i := 0; i < n; i++ { // sprinkle extra edges for realism
			adj.Set(rng.Intn(n), rng.Intn(n), true)
		}

		seqM := pram.New(0)
		var seqOut *pram.BoolMatrix
		seqNs := timeOp(1, func() {
			seqM = pram.New(0)
			seqOut = pram.TransitiveClosure(seqM, adj)
		})

		parM := pram.New(0)
		var parOut *pram.BoolMatrix
		parNs := timeOp(1, func() {
			parM = pram.New(0, pram.WithWorkers(workers))
			parOut = pram.TransitiveClosure(parM, adj)
		})

		// The substitution rule, enforced: identical closure, rounds, work.
		if !seqOut.Equal(parOut) {
			return nil, fmt.Errorf("X1: closure diverged between executors at n=%d", n)
		}
		if seqM.Cost() != parM.Cost() {
			return nil, fmt.Errorf("X1: cost diverged at n=%d: sequential %v, parallel %v",
				n, seqM.Cost(), parM.Cost())
		}
		c := seqM.Cost()
		t.AddRow(n, c.Rounds, c.Work, seqNs/1e6, parNs/1e6, seqNs/parNs, workers)
	}
	t.Note("executor substitution verified: results, rounds and work are identical; only wall-clock differs")
	t.Note("speedup ≈ 1.0 on a single core; grows toward the worker count with GOMAXPROCS")
	return t, nil
}

// X2BatchAnswering serves a batch of reachability queries from one
// preprocessed store, comparing the one-at-a-time loop against the
// AnswerBatch worker pool. The BFS-per-query baseline scheme makes each
// query expensive enough for pool scheduling to amortize; the closure
// scheme row shows the overhead floor on O(1) answers.
func X2BatchAnswering(s Scale) (*Table, error) {
	t := &Table{
		ID:    "X2",
		Title: "concurrent batch answering: AnswerBatch vs one-at-a-time loop",
		Columns: []string{"scheme", "vertices", "queries", "loop ms",
			"batch ms", "speedup", "workers"},
	}
	workers := Parallelism()
	const queryCount = 64
	for _, n := range s.sizes([]int{256, 512}, []int{512, 1024, 2048}) {
		g := graph.RandomDirected(n, 4*n, int64(n))
		d := g.Encode()
		rng := rand.New(rand.NewSource(int64(n) + 13))
		queries := make([][]byte, queryCount)
		for i := range queries {
			queries[i] = schemes.NodePairQuery(rng.Intn(n), rng.Intn(n))
		}
		for _, sc := range []struct {
			label  string
			scheme *core.Scheme
		}{
			{"bfs-per-query", schemes.ReachabilityBFSScheme()},
			{"closure-matrix", schemes.ReachabilityScheme()},
		} {
			pd, err := sc.scheme.Preprocess(d)
			if err != nil {
				return nil, err
			}
			var loopRes, batchRes []bool
			loopNs := timeOp(1, func() {
				loopRes, err = sc.scheme.AnswerBatch(pd, queries, 1)
			})
			if err != nil {
				return nil, err
			}
			batchNs := timeOp(1, func() {
				batchRes, err = sc.scheme.AnswerBatch(pd, queries, workers)
			})
			if err != nil {
				return nil, err
			}
			for i := range loopRes {
				if loopRes[i] != batchRes[i] {
					return nil, fmt.Errorf("X2: %s query %d diverged between loop and batch", sc.label, i)
				}
			}
			t.AddRow(sc.label, n, queryCount, loopNs/1e6, batchNs/1e6, loopNs/batchNs, workers)
		}
	}
	t.Note("verdicts verified identical between loop and worker pool")
	t.Note("bfs-per-query rows show the serving win: expensive NC answers overlap across workers")
	return t, nil
}
