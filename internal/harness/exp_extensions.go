package harness

import (
	"math/rand"

	"pitract/internal/core"
	"pitract/internal/graph"
	"pitract/internal/relation"
	"pitract/internal/schemes"
	"pitract/internal/topk"
	"pitract/internal/views"
)

// C10TopK measures §8(5): top-k answering with early termination — the
// Threshold Algorithm against the full-scan baseline, with access counts
// showing how little of the preprocessed lists TA reads.
func C10TopK(s Scale) (*Table, error) {
	t := &Table{
		ID:    "C10",
		Title: "top-k with early termination (Fagin/TA) vs full scan",
		Columns: []string{"objects", "k", "TA ns/query", "scan ns/query",
			"seq accesses", "frac of lists"},
	}
	var accessSeries []core.Measurement
	for _, n := range s.sizes([]int{1 << 12, 1 << 15, 1 << 17},
		[]int{1 << 13, 1 << 16, 1 << 19, 1 << 21}) {
		d := topk.GenZipf(n, 3, int64(n))
		idx, err := topk.NewIndex(d)
		if err != nil {
			return nil, err
		}
		k := 10
		// Correctness check against the scan.
		ta, st, err := idx.TopK(k)
		if err != nil {
			return nil, err
		}
		sc, err := topk.Scan(d, k)
		if err != nil {
			return nil, err
		}
		for i := range ta {
			if ta[i].Score != sc[i].Score {
				return nil, errMismatch("C10", i)
			}
		}
		taNs := timeOp(16, func() {
			_, _, _ = idx.TopK(k)
		})
		scanNs := timeOp(4, func() {
			_, _ = topk.Scan(d, k)
		})
		frac := float64(st.Sequential) / float64(3*n)
		t.AddRow(n, k, taNs, scanNs, st.Sequential, frac)
		accessSeries = append(accessSeries, core.Measurement{N: float64(n), Cost: float64(st.Sequential)})
	}
	t.Note("%s", fitNote("TA sequential accesses", accessSeries))
	t.Note("early termination reads a vanishing fraction of the preprocessed lists on skewed scores")
	return t, nil
}

// C11IncrementalPreprocessing measures the §1 incremental-preprocessing
// claim: maintaining Π(D ⊕ ∆D) from Π(D) beats re-preprocessing, and the
// maintained structure answers identically.
func C11IncrementalPreprocessing(s Scale) (*Table, error) {
	t := &Table{
		ID:    "C11",
		Title: "incremental preprocessing: maintain Π(D ⊕ ∆D) vs re-preprocess",
		Columns: []string{"structure", "|D|", "|∆D|", "maintain ns", "re-preprocess ns",
			"speedup"},
	}
	// Sorted-key file under insertions.
	incSel := schemes.IncrementalPointSelection()
	for _, n := range s.sizes([]int{1 << 12, 1 << 15}, []int{1 << 14, 1 << 17, 1 << 19}) {
		rel := relation.Generate(relation.GenConfig{Rows: n, Seed: int64(n), KeyMax: int64(2 * n)})
		d := rel.Encode()
		pd, err := incSel.Scheme.Preprocess(d)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(int64(n)))
		batch := make([]int64, 16)
		for i := range batch {
			batch[i] = rng.Int63n(int64(4 * n))
		}
		delta := schemes.KeysDelta(batch)
		// Verify equivalence before timing.
		if err := incSel.VerifyIncremental(d, [][]byte{delta}, [][]byte{
			schemes.PointQuery(batch[0]), schemes.PointQuery(-1),
		}); err != nil {
			return nil, err
		}
		maintainNs := timeOp(8, func() {
			_, _ = incSel.ApplyDelta(pd, delta)
		})
		updated, err := incSel.ApplyUpdate(d, delta)
		if err != nil {
			return nil, err
		}
		rebuildNs := timeOp(4, func() {
			_, _ = incSel.Scheme.Preprocess(updated)
		})
		t.AddRow("sorted-keys", n, len(batch), maintainNs, rebuildNs, rebuildNs/maintainNs)
	}
	// Closure matrix under edge insertions.
	incReach := schemes.IncrementalReachability()
	for _, n := range s.sizes([]int{1 << 7, 1 << 9}, []int{1 << 8, 1 << 10, 1 << 11}) {
		g := graph.RandomDirected(n, 2*n, int64(n))
		d := g.Encode()
		pd, err := incReach.Scheme.Preprocess(d)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(int64(n)))
		u, v := rng.Intn(n), rng.Intn(n)
		for u == v {
			v = rng.Intn(n)
		}
		delta := schemes.EdgeDelta(u, v)
		if err := incReach.VerifyIncremental(d, [][]byte{delta}, [][]byte{
			schemes.NodePairQuery(0, n-1), schemes.NodePairQuery(u, v),
		}); err != nil {
			return nil, err
		}
		maintainNs := timeOp(8, func() {
			_, _ = incReach.ApplyDelta(pd, delta)
		})
		updated, err := incReach.ApplyUpdate(d, delta)
		if err != nil {
			return nil, err
		}
		rebuildNs := timeOp(2, func() {
			_, _ = incReach.Scheme.Preprocess(updated)
		})
		t.AddRow("closure-matrix", n, 1, maintainNs, rebuildNs, rebuildNs/maintainNs)
	}
	t.Note("maintained structures verified answer-equivalent to fresh preprocessing at every step")
	return t, nil
}

// C12FunctionAndRewriting measures the §8(3) function schemes (RMQ, LCA)
// and the λ-rewriting scheme (views), the Definition 1 extensions.
func C12FunctionAndRewriting(s Scale) (*Table, error) {
	t := &Table{
		ID:      "C12",
		Title:   "extensions: function schemes (§8(3)) and query rewriting λ",
		Columns: []string{"scheme", "n", "prep ns", "apply ns/query", "note"},
	}
	// RMQ function scheme.
	rmqScheme := schemes.RMQFuncScheme()
	for _, n := range s.sizes([]int{1 << 12, 1 << 15}, []int{1 << 14, 1 << 17}) {
		rng := rand.New(rand.NewSource(int64(n)))
		a := make([]int64, n)
		for i := range a {
			a[i] = rng.Int63n(1 << 20)
		}
		d := schemes.EncodeList(a)
		var pd []byte
		prepNs := timeOp(1, func() {
			var err error
			pd, err = rmqScheme.Preprocess(d)
			if err != nil {
				panic(err)
			}
		})
		queries := make([][]byte, 128)
		for i := range queries {
			lo := rng.Intn(n)
			queries[i] = schemes.RangeQueryIJ(lo, lo+rng.Intn(n-lo))
		}
		qi := 0
		applyNs := timeOp(4096, func() {
			_, _ = rmqScheme.Apply(pd, queries[qi%len(queries)])
			qi++
		})
		t.AddRow("rmq/sparse-table", n, prepNs, applyNs, "O(1) argmin")
	}
	// LCA function scheme (cubic preprocessing: small n).
	lcaScheme := schemes.LCAFuncScheme()
	for _, n := range s.sizes([]int{64, 128}, []int{128, 256, 384}) {
		g := graph.RandomDAG(n, 3*n, int64(n))
		d := g.Encode()
		var pd []byte
		prepNs := timeOp(1, func() {
			var err error
			pd, err = lcaScheme.Preprocess(d)
			if err != nil {
				panic(err)
			}
		})
		rng := rand.New(rand.NewSource(int64(n)))
		queries := make([][]byte, 128)
		for i := range queries {
			queries[i] = schemes.NodePairQuery(rng.Intn(n), rng.Intn(n))
		}
		qi := 0
		applyNs := timeOp(4096, func() {
			_, _ = lcaScheme.Apply(pd, queries[qi%len(queries)])
			qi++
		})
		t.AddRow("lca/all-pairs-table", n, prepNs, applyNs, "O(1) representative")
	}
	// λ-rewriting scheme over views.
	for _, n := range s.sizes([]int{1 << 13}, []int{1 << 16}) {
		rel := relation.Generate(relation.GenConfig{Rows: n, Seed: int64(n), KeyMax: int64(n)})
		d := rel.Encode()
		defs := views.EvenPartition("key", 0, int64(n)-1, 8)
		vr := schemes.ViewRewritingScheme(defs)
		var pd []byte
		prepNs := timeOp(1, func() {
			var err error
			pd, err = vr.Preprocess(d)
			if err != nil {
				panic(err)
			}
		})
		rng := rand.New(rand.NewSource(int64(n)))
		queries := make([][]byte, 128)
		for i := range queries {
			queries[i] = schemes.PointQuery(rng.Int63n(int64(n)))
		}
		qi := 0
		applyNs := timeOp(4096, func() {
			lq, err := vr.Rewrite(queries[qi%len(queries)])
			if err != nil {
				panic(err)
			}
			_, _ = vr.Answer(pd, lq)
			qi++
		})
		t.AddRow("views/λ-rewriting", n, prepNs, applyNs, "⟨Π(D), λ(Q)⟩ ∈ S′")
	}
	t.Note("the revised Definition 1 (with λ) and the §8(3) function schemes, both exercised")
	return t, nil
}
