package harness

// X4 measures the sharded serving path end-to-end: one reachability
// dataset registered over HTTP with ?shards ∈ {1, 2, 4} (range
// partitioning, so vertex blocks stay contiguous), reporting per-layout
// preprocess wall time, total snapshot bytes (per-shard closures plus the
// portal overlay summary), and served queries per second through
// /v1/query/batch. The 1-shard row is the unsharded baseline; every
// sharded verdict is differentially checked against it in-line.

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"time"

	"pitract/internal/graph"
	"pitract/internal/schemes"
	"pitract/internal/server"
	"pitract/internal/store"
)

// X4Sharding measures 1/2/4-shard preprocessing and serving against the
// unsharded baseline on one dataset.
func X4Sharding(s Scale) (*Table, error) {
	t := &Table{
		ID:    "X4",
		Title: "sharded stores: preprocess time, snapshot bytes, served QPS (reachability, range partitioner)",
		Columns: []string{"vertices", "shards", "preprocess ms", "snapshot B",
			"vs 1-shard B", "queries", "batch ms", "qps", "vs 1-shard qps"},
	}
	workers := Parallelism()
	queryCount := 256
	if s == Full {
		queryCount = 1024
	}

	for _, n := range s.sizes([]int{192}, []int{512, 1024}) {
		// Communities aligned with range partitioning keep the cross-shard
		// cut small but non-empty — the realistic sharding regime.
		g := graph.CommunityGraph(8, n/8, n/4, int64(n))
		data := g.Encode()
		rng := rand.New(rand.NewSource(int64(n) + 31))
		queries := make([][]byte, queryCount)
		for i := range queries {
			queries[i] = schemes.NodePairQuery(rng.Intn(g.N()), rng.Intn(g.N()))
		}

		var baseBytes, baseQPS float64
		var baseline []bool
		for _, shards := range []int{1, 2, 4} {
			reg := store.NewRegistry("")
			srv := server.New(reg, nil)
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return nil, fmt.Errorf("X4: listen: %w", err)
			}
			serveErr := make(chan error, 1)
			go func() { serveErr <- srv.Serve(ln) }()
			base := "http://" + ln.Addr().String()
			client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: workers + 1}}

			var info server.DatasetInfo
			prepNs := timeOp(1, func() {
				err = postX3(client, fmt.Sprintf("%s/v1/datasets?shards=%d&partitioner=range", base, shards),
					server.RegisterRequest{ID: "g", Scheme: "reachability/closure-matrix", Data: data}, &info)
			})
			if err != nil {
				return nil, fmt.Errorf("X4: register %d shards: %w", shards, err)
			}
			if info.Shards != shards {
				return nil, fmt.Errorf("X4: registered %d shards, want %d", info.Shards, shards)
			}

			var answers []bool
			batchNs := timeOp(1, func() {
				var resp server.BatchResponse
				if err = postX3(client, base+"/v1/query/batch", server.BatchRequest{
					Dataset: "g", Queries: queries, Parallelism: workers,
				}, &resp); err != nil {
					return
				}
				answers = resp.Answers
			})
			if err != nil {
				return nil, fmt.Errorf("X4: batch %d shards: %w", shards, err)
			}
			qps := 1e9 * float64(queryCount) / batchNs
			if shards == 1 {
				baseBytes, baseQPS, baseline = float64(info.PrepBytes), qps, answers
			} else {
				for i := range answers {
					if answers[i] != baseline[i] {
						return nil, fmt.Errorf("X4: %d shards: query %d diverged from unsharded baseline", shards, i)
					}
				}
			}
			t.AddRow(g.N(), shards, prepNs/1e6, info.PrepBytes,
				float64(info.PrepBytes)/baseBytes, queryCount, batchNs/1e6, qps, qps/baseQPS)

			client.CloseIdleConnections()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			err = srv.Shutdown(ctx)
			cancel()
			if err != nil {
				return nil, fmt.Errorf("X4: shutdown: %w", err)
			}
			if err := <-serveErr; err != nil {
				return nil, fmt.Errorf("X4: serve: %w", err)
			}
		}
	}
	t.Note("every sharded verdict differentially verified against the 1-shard baseline in-line")
	t.Note("snapshot B = per-shard closure matrices + portal overlay summary; closures shrink as (n/k)²")
	t.Note("preprocess runs one goroutine per shard; single-core hosts show ≈1.0 speedup (see CHANGES.md PR 1)")
	return t, nil
}
