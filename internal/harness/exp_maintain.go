package harness

// X5 measures incremental serving end-to-end: one dataset registered over
// HTTP, then maintained in place under PATCH /v1/datasets/{id} deltas —
// the paper's §1 justification (3), that preprocessing pays off because
// Π(D ⊕ ∆D) can be maintained instead of recomputed. For each size the
// table compares the total wall time of PATCHing the deltas (incremental
// maintenance plus snapshot rewriting) against re-registering the updated
// dataset from scratch (a fresh PTIME Preprocess), and every verdict
// served from the maintained store is differentially checked in-line
// against a from-scratch preprocessing of the updated data.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"time"

	"pitract/internal/core"
	"pitract/internal/graph"
	"pitract/internal/schemes"
	"pitract/internal/server"
	"pitract/internal/store"
)

// patchX5 issues one PATCH /v1/datasets/{id} with a delta batch.
func patchX5(client *http.Client, url string, deltas [][]byte, out interface{}) error {
	body, err := json.Marshal(server.PatchRequest{Deltas: deltas})
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPatch, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, e.Error)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// x5Workload is one maintained-scheme scenario.
type x5Workload struct {
	scheme  string
	inc     *core.IncrementalScheme
	data    []byte   // D as registered
	deltas  [][]byte // applied one PATCH per delta
	queries [][]byte // probes answered after maintenance
}

// x5PointSelection inserts fresh keys into a sorted-key relation.
func x5PointSelection(n int) x5Workload {
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(2 * i) // even keys, so odd inserts are genuinely new
	}
	deltas := make([][]byte, 16)
	var inserted []int64
	for i := range deltas {
		batch := []int64{int64(2*n + 2*i + 1), int64(4*n + 2*i + 1)}
		inserted = append(inserted, batch...)
		deltas[i] = schemes.KeysDelta(batch)
	}
	var queries [][]byte
	for _, k := range inserted {
		queries = append(queries, schemes.PointQuery(k), schemes.PointQuery(k+1))
	}
	queries = append(queries, schemes.PointQuery(0), schemes.PointQuery(int64(2*n-2)))
	return x5Workload{
		scheme:  "point-selection/sorted-keys",
		inc:     schemes.IncrementalPointSelection(),
		data:    schemes.RelationFromKeys(keys),
		deltas:  deltas,
		queries: queries,
	}
}

// x5Reachability inserts random edges into a community graph.
func x5Reachability(n int) x5Workload {
	g := graph.CommunityGraph(8, n/8, n/4, int64(n)+73)
	rng := rand.New(rand.NewSource(int64(n) + 37))
	deltas := make([][]byte, 8)
	for i := range deltas {
		u, v := rng.Intn(g.N()), rng.Intn(g.N())
		for u == v {
			v = rng.Intn(g.N())
		}
		deltas[i] = schemes.EdgeDelta(u, v)
	}
	queries := make([][]byte, 128)
	for i := range queries {
		queries[i] = schemes.NodePairQuery(rng.Intn(g.N()), rng.Intn(g.N()))
	}
	return x5Workload{
		scheme:  "reachability/closure-matrix",
		inc:     schemes.IncrementalReachability(),
		data:    g.Encode(),
		deltas:  deltas,
		queries: queries,
	}
}

// X5IncrementalServing measures PATCH-maintained Π(D ⊕ ∆D) against
// re-registering the updated dataset, with in-line differential checks.
func X5IncrementalServing(s Scale) (*Table, error) {
	t := &Table{
		ID:    "X5",
		Title: "incremental serving: PATCH-maintained Π(D ⊕ ∆D) vs re-registering from scratch",
		Columns: []string{"scheme", "size", "deltas", "maintain ms", "re-register ms",
			"speedup", "version", "checked"},
	}
	var loads []x5Workload
	for _, n := range s.sizes([]int{512}, []int{4096, 16384}) {
		loads = append(loads, x5PointSelection(n))
	}
	for _, n := range s.sizes([]int{128}, []int{384, 512}) {
		loads = append(loads, x5Reachability(n))
	}

	for _, wl := range loads {
		// The updated raw dataset D ⊕ ∆D₁ ⊕ … ⊕ ∆Dₖ, for the re-register
		// baseline and the differential oracle.
		updated := wl.data
		var err error
		for _, d := range wl.deltas {
			if updated, err = wl.inc.ApplyUpdate(updated, d); err != nil {
				return nil, fmt.Errorf("X5: ⊕: %w", err)
			}
		}

		dir, err := os.MkdirTemp("", "pitract-x5-")
		if err != nil {
			return nil, err
		}
		srv := server.New(store.NewRegistry(dir), nil)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			os.RemoveAll(dir)
			return nil, fmt.Errorf("X5: listen: %w", err)
		}
		serveErr := make(chan error, 1)
		go func() { serveErr <- srv.Serve(ln) }()
		base := "http://" + ln.Addr().String()
		client := &http.Client{}

		row, err := func() ([]interface{}, error) {
			if err := postX3(client, base+"/v1/datasets",
				server.RegisterRequest{ID: "d", Scheme: wl.scheme, Data: wl.data}, nil); err != nil {
				return nil, fmt.Errorf("X5: register: %w", err)
			}
			// Maintain: one PATCH carrying the whole delta batch — one
			// atomic application, one snapshot rewrite, matching the one
			// Preprocess and one snapshot write of the re-register baseline.
			var info server.DatasetInfo
			maintainNs := timeOp(1, func() {
				err = patchX5(client, base+"/v1/datasets/d", wl.deltas, &info)
			})
			if err != nil {
				return nil, fmt.Errorf("X5: patch: %w", err)
			}
			if info.Version != uint64(len(wl.deltas)) {
				return nil, fmt.Errorf("X5: version %d after %d deltas", info.Version, len(wl.deltas))
			}
			// Re-register baseline: the updated dataset preprocessed from
			// scratch (and snapshotted), under a fresh id.
			reregisterNs := timeOp(1, func() {
				err = postX3(client, base+"/v1/datasets",
					server.RegisterRequest{ID: "d-rebuilt", Scheme: wl.scheme, Data: updated}, nil)
			})
			if err != nil {
				return nil, fmt.Errorf("X5: re-register: %w", err)
			}
			// Differential check: the maintained store must answer every
			// probe exactly like the from-scratch store of the updated data.
			var got, want server.BatchResponse
			if err := postX3(client, base+"/v1/query/batch",
				server.BatchRequest{Dataset: "d", Queries: wl.queries}, &got); err != nil {
				return nil, fmt.Errorf("X5: query maintained: %w", err)
			}
			if err := postX3(client, base+"/v1/query/batch",
				server.BatchRequest{Dataset: "d-rebuilt", Queries: wl.queries}, &want); err != nil {
				return nil, fmt.Errorf("X5: query rebuilt: %w", err)
			}
			for i := range wl.queries {
				if got.Answers[i] != want.Answers[i] {
					return nil, fmt.Errorf("X5: %s query %d: maintained %v, rebuilt %v",
						wl.scheme, i, got.Answers[i], want.Answers[i])
				}
			}
			size := len(wl.data)
			return []interface{}{wl.scheme, size, len(wl.deltas), maintainNs / 1e6,
				reregisterNs / 1e6, reregisterNs / maintainNs, info.Version, len(wl.queries)}, nil
		}()

		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		sdErr := srv.Shutdown(ctx)
		cancel()
		os.RemoveAll(dir)
		if err != nil {
			return nil, err
		}
		if sdErr != nil {
			return nil, fmt.Errorf("X5: shutdown: %w", sdErr)
		}
		if err := <-serveErr; err != nil {
			return nil, fmt.Errorf("X5: serve: %w", err)
		}
		t.AddRow(row...)
	}
	t.Note("every maintained verdict differentially checked against a from-scratch preprocess of D ⊕ ∆D in-line")
	t.Note("maintain ms = one PATCH of the whole delta batch (apply + snapshot rewrite); re-register ms = fresh Preprocess + snapshot write")
	t.Note("size = encoded |D| bytes; version = deltas applied (monotonic, persisted in the snapshot)")
	return t, nil
}
