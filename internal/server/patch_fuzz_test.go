package server

// FuzzApplyDelta throws hostile HTTP delta payloads at PATCH
// /v1/datasets/{id}: whatever bytes arrive, the server must respond with a
// clean status (200 only for genuinely applicable deltas), never panic,
// and never corrupt the served Π or its on-disk snapshot — after every
// attempt the dataset still answers its canary queries correctly and the
// snapshot file still decodes to a Π that agrees with the served one. The
// seeded corpus runs as unit tests under plain `go test` (and so in CI).

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"pitract/internal/schemes"
	"pitract/internal/store"
)

func FuzzApplyDelta(f *testing.F) {
	// Seeds: valid deltas for each wire shape, boundary garbage, and
	// truncations of valid encodings.
	f.Add(schemes.KeysDelta([]int64{9}))
	f.Add(schemes.KeysDelta(nil))
	f.Add(schemes.EdgeDelta(0, 1))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add(schemes.KeysDelta([]int64{9, 9, -9})[:1])
	f.Add(bytes.Repeat([]byte{0x80}, 16))

	f.Fuzz(func(t *testing.T, delta []byte) {
		dir := t.TempDir()
		srv := New(store.NewRegistry(dir), nil)
		ts := httptest.NewServer(srv)
		defer ts.Close()
		client := ts.Client()

		data := schemes.RelationFromKeys([]int64{2, 4, 6})
		if code := postJSON(t, client, ts.URL+"/v1/datasets", RegisterRequest{
			ID: "d", Scheme: "point-selection/sorted-keys", Data: data,
		}, nil); code != http.StatusOK {
			t.Fatalf("register: status %d", code)
		}

		body, _ := json.Marshal(PatchRequest{Deltas: [][]byte{delta}})
		req, err := http.NewRequest(http.MethodPatch, ts.URL+"/v1/datasets/d", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict {
			t.Fatalf("PATCH with %d delta bytes: status %d, want 200 or 409", len(delta), resp.StatusCode)
		}

		// The served Π must still answer the canaries correctly: original
		// keys present, a never-inserted key absent (no hostile delta can
		// fabricate key 7 — KeysDelta(7) would be a *valid* delta, and then
		// the oracle below accounts for it).
		applied := resp.StatusCode == http.StatusOK
		var q QueryResponse
		if code := postJSON(t, client, ts.URL+"/v1/query", QueryRequest{
			Dataset: "d", Query: schemes.PointQuery(4),
		}, &q); code != http.StatusOK || !q.Answer {
			t.Fatalf("canary key 4 lost after hostile PATCH: %d %+v", code, q)
		}
		wantVersion := uint64(0)
		if applied {
			wantVersion = 1
		}
		if q.Version != wantVersion {
			t.Fatalf("version %d after PATCH status %d", q.Version, resp.StatusCode)
		}

		// The snapshot on disk must decode and hold exactly the served Π.
		snap, err := store.Load(store.SnapshotPath(dir, "d"))
		if err != nil {
			t.Fatalf("snapshot corrupted by hostile PATCH: %v", err)
		}
		if snap.Version != wantVersion {
			t.Fatalf("snapshot version %d, want %d", snap.Version, wantVersion)
		}
		ds, ok := srv.Registry().Get("d")
		if !ok {
			t.Fatal("registry entry lost")
		}
		served, _ := ds.View()
		if !bytes.Equal(snap.Prep, served) {
			t.Fatal("snapshot Π diverged from served Π")
		}
	})
}
