package server

// FuzzApplyDelta throws hostile HTTP delta payloads at PATCH
// /v1/datasets/{id}: whatever bytes arrive — inserts, tombstones, upserts,
// junk with a valid envelope, or raw garbage — the server must respond
// with a clean status (200 only for genuinely applicable deltas), never
// panic, and never corrupt the served Π or its on-disk snapshot. The
// post-state is checked against the ⊕ oracle: if the server said 200, the
// delta must apply to the raw database too, and the served answers must
// match a from-scratch preprocessing of the updated database; if it said
// 409, the dataset must be bitwise untouched. The seeded corpus runs as
// unit tests under plain `go test` (and so in CI).

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"pitract/internal/schemes"
	"pitract/internal/store"
)

func FuzzApplyDelta(f *testing.F) {
	// Seeds: valid deltas for each wire shape and kind, boundary garbage,
	// truncations of valid encodings, and hostile tagged envelopes.
	f.Add(schemes.KeysDelta([]int64{9}))
	f.Add(schemes.KeysDelta(nil))
	f.Add(schemes.EdgeDelta(0, 1))
	f.Add(schemes.KeysDeleteDelta([]int64{4}))
	f.Add(schemes.KeysDeleteDelta([]int64{999}))
	f.Add(schemes.KeysUpsertDelta([]int64{4, 7}))
	f.Add(schemes.KeysDeleteDelta(nil))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0xff, 0xff, 0xff, 0x00, 0x07, 1, 2})        // unknown kind byte
	f.Add([]byte{0xff, 0xff, 0xff, 0x00, 0x02, 0x80})        // delete with torn varint payload
	f.Add(append(schemes.KeysDeleteDelta([]int64{4}), 0xEE)) // trailing junk
	f.Add(schemes.KeysDelta([]int64{9, 9, -9})[:1])
	f.Add(bytes.Repeat([]byte{0x80}, 16))

	f.Fuzz(func(t *testing.T, delta []byte) {
		dir := t.TempDir()
		srv := New(store.NewRegistry(dir), nil)
		ts := httptest.NewServer(srv)
		defer ts.Close()
		client := ts.Client()

		inc := schemes.IncrementalPointSelection()
		data := schemes.RelationFromKeys([]int64{2, 4, 6})
		if code := postJSON(t, client, ts.URL+"/v1/datasets", RegisterRequest{
			ID: "d", Scheme: "point-selection/sorted-keys", Data: data,
		}, nil); code != http.StatusOK {
			t.Fatalf("register: status %d", code)
		}

		body, _ := json.Marshal(PatchRequest{Deltas: [][]byte{delta}})
		req, err := http.NewRequest(http.MethodPatch, ts.URL+"/v1/datasets/d", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict {
			t.Fatalf("PATCH with %d delta bytes: status %d, want 200 or 409", len(delta), resp.StatusCode)
		}

		// The ⊕ oracle: a 200 means the delta is genuinely applicable, so it
		// must apply to the raw database too; a 409 means nothing changed.
		applied := resp.StatusCode == http.StatusOK
		oracle := data
		if applied {
			oracle, err = inc.ApplyUpdate(data, delta)
			if err != nil {
				t.Fatalf("server applied a delta ⊕ rejects: %v", err)
			}
		}
		want, err := inc.Scheme.Preprocess(oracle)
		if err != nil {
			t.Fatal(err)
		}
		wantVersion := uint64(0)
		if applied {
			wantVersion = 1
		}
		// The served verdicts must match a from-scratch preprocessing of the
		// oracle database for every canary key — original keys, keys a valid
		// delta may have inserted or tombstoned, and a never-touched one.
		for _, k := range []int64{2, 4, 6, 7, 9, 999, -9} {
			expect, err := inc.Scheme.Answer(want, schemes.PointQuery(k))
			if err != nil {
				t.Fatal(err)
			}
			var q QueryResponse
			if code := postJSON(t, client, ts.URL+"/v1/query", QueryRequest{
				Dataset: "d", Query: schemes.PointQuery(k),
			}, &q); code != http.StatusOK || q.Answer != expect {
				t.Fatalf("canary key %d after PATCH status %d: code %d answer %v, oracle says %v",
					k, resp.StatusCode, code, q.Answer, expect)
			}
			if q.Version != wantVersion {
				t.Fatalf("version %d after PATCH status %d", q.Version, resp.StatusCode)
			}
		}

		// The snapshot on disk must decode and hold exactly the served Π.
		snap, err := store.Load(store.SnapshotPath(dir, "d"))
		if err != nil {
			t.Fatalf("snapshot corrupted by hostile PATCH: %v", err)
		}
		if snap.Version != wantVersion {
			t.Fatalf("snapshot version %d, want %d", snap.Version, wantVersion)
		}
		ds, ok := srv.Registry().Get("d")
		if !ok {
			t.Fatal("registry entry lost")
		}
		served, _ := ds.View()
		if !bytes.Equal(snap.Prep, served) {
			t.Fatal("snapshot Π diverged from served Π")
		}
	})
}
