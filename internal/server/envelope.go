package server

// The serving envelope: admission control, request budgets, and
// backpressure for the answering face of the preprocess-once/answer-many
// asymmetry. The paper's asymmetry only pays off if the NC answer path
// survives real traffic — a *valid* huge registration, an uncapped batch,
// or a saturating client can starve the node just as surely as a hostile
// payload (which PR 2's decoder bounds already stop). The envelope states
// the degraded mode instead of collapsing: work beyond the configured
// concurrency limits is refused with 429 + Retry-After (backpressure, not
// an unbounded queue), oversized bodies and batches are refused with 413
// naming the limit, and registrations or delta batches that outrun their
// wall budget are abandoned with 503 and no catalog side effects. Every
// rejection and the live in-flight gauge are surfaced in /v1/stats, so an
// operator can see the envelope working rather than infer it from latency.

import (
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pitract/internal/obs"
)

// obsAdmission times every admission decision (wait + verdict); the
// envelope's try-acquire design means waits are bounded by lock contention,
// and this histogram is what proves that stays true under load.
var obsAdmission = obs.Stage(obs.StageAdmission)

// Default envelope limits: wide enough that every existing workload in
// this repository is unaffected, finite enough that no single request can
// exhaust the node.
const (
	// DefaultMaxBodyBytes caps request bodies (registration data and query
	// batches are buffered in memory). 64 MiB fits every workload in this
	// repository with room to spare.
	DefaultMaxBodyBytes = 64 << 20
	// DefaultMaxBatchQueries caps len(BatchRequest.Queries): each query is
	// decoded and answered, so an unbounded batch is an unbounded work
	// order riding one request.
	DefaultMaxBatchQueries = 4096
	// DefaultRetryAfter is advertised in the Retry-After header of every
	// 429 when Limits.RetryAfter is unset.
	DefaultRetryAfter = time.Second
)

// Limits configures the serving envelope. The zero value of a field keeps
// its documented default (for the caps) or disables the limit (for the
// concurrency and budget knobs), so Limits{} reproduces the pre-envelope
// behavior with finite body/batch caps. Set it before serving traffic via
// Server.SetLimits — the server face of the `pitract serve` -max-* and
// -register-budget flags.
type Limits struct {
	// MaxBodyBytes caps every request body; requests over it are refused
	// with 413 naming the limit. 0 selects DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// MaxBatchQueries caps len(BatchRequest.Queries); larger batches are
	// refused with 413 naming the limit. 0 selects DefaultMaxBatchQueries.
	MaxBatchQueries int
	// MaxInFlight caps concurrently admitted work requests across the
	// whole server (registrations, PATCHes, queries, and batches); work
	// beyond it is refused with 429 + Retry-After instead of queueing.
	// Observability endpoints (/healthz, /v1/stats, GETs) are never
	// metered — the envelope must stay visible under saturation. 0 = no
	// global limit.
	MaxInFlight int
	// MaxInFlightPerDataset caps concurrently admitted work requests per
	// dataset id, so one hot dataset cannot starve the rest of the
	// catalog. 0 = no per-dataset limit.
	MaxInFlightPerDataset int
	// RegisterBudget bounds the wall time of one registration or PATCH:
	// the request context's deadline is threaded into
	// Registry.RegisterContext / ApplyDeltaContext, and work that outruns
	// it is abandoned with 503 and no catalog entry (registration) or
	// nothing applied (PATCH). 0 = no budget.
	RegisterBudget time.Duration
	// RetryAfter is the base delay advertised in the Retry-After header
	// of every 429 (and of breaker 503s). The advertised value is
	// jittered ±20% per response so synchronized clients don't retry in
	// lockstep. 0 selects DefaultRetryAfter.
	RetryAfter time.Duration
	// QueryBudget bounds the wall time of one query or batch: the
	// request context's deadline is threaded through the store answer
	// path (and the sharded fan-out), and work that outruns it is
	// abandoned with 504 — the worker's result is dropped, never left
	// holding the pool. 0 = no budget.
	QueryBudget time.Duration
}

// withDefaults resolves the zero-value fields to their documented
// defaults.
func (l Limits) withDefaults() Limits {
	if l.MaxBodyBytes <= 0 {
		l.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if l.MaxBatchQueries <= 0 {
		l.MaxBatchQueries = DefaultMaxBatchQueries
	}
	if l.MaxInFlight < 0 {
		l.MaxInFlight = 0
	}
	if l.MaxInFlightPerDataset < 0 {
		l.MaxInFlightPerDataset = 0
	}
	if l.RetryAfter <= 0 {
		l.RetryAfter = DefaultRetryAfter
	}
	if l.QueryBudget < 0 {
		l.QueryBudget = 0
	}
	return l
}

// EnvelopeStats is the wire form of the envelope's gauges, counters, and
// active limits — the /v1/stats "envelope" block. The limits ride along so
// an operator reading the stats sees the envelope the counters were
// produced under (0 = unlimited / no budget).
type EnvelopeStats struct {
	// InFlight is the number of work requests currently admitted.
	InFlight int64 `json:"in_flight"`
	// The active limits (see Limits; 0 = unlimited / no budget).
	MaxInFlight           int   `json:"max_in_flight"`
	MaxInFlightPerDataset int   `json:"max_in_flight_per_dataset"`
	MaxBodyBytes          int64 `json:"max_body_bytes"`
	MaxBatchQueries       int   `json:"max_batch_queries"`
	RegisterBudgetMs      int64 `json:"register_budget_ms"`
	QueryBudgetMs         int64 `json:"query_budget_ms"`
	// Rejected429 counts requests refused by the concurrency limits
	// (global or per-dataset) with 429 + Retry-After.
	Rejected429 int64 `json:"rejected_429"`
	// RejectedBody413 counts requests refused for an oversized body.
	RejectedBody413 int64 `json:"rejected_body_413"`
	// RejectedBatch413 counts batch requests refused for too many queries.
	RejectedBatch413 int64 `json:"rejected_batch_413"`
	// BudgetExceeded counts registrations and PATCHes abandoned with 503
	// after outrunning RegisterBudget.
	BudgetExceeded int64 `json:"budget_exceeded"`
	// Deadline504 counts queries and batches abandoned with 504 after
	// outrunning QueryBudget.
	Deadline504 int64 `json:"deadline_504"`
	// Breaker503 counts requests refused fast because the dataset's
	// circuit breaker was open.
	Breaker503 int64 `json:"breaker_503"`
	// PerEndpoint breaks the rejection counters down by endpoint (the
	// dataset subresource is collapsed to "/v1/datasets/{id}"). Absent until
	// the first rejection, so the zero-traffic stats block stays compact.
	PerEndpoint map[string]EndpointRejections `json:"per_endpoint,omitempty"`
}

// EndpointRejections is one endpoint's slice of the envelope rejection
// counters (see EnvelopeStats for what each counts).
type EndpointRejections struct {
	Rejected429      int64 `json:"rejected_429,omitempty"`
	RejectedBody413  int64 `json:"rejected_body_413,omitempty"`
	RejectedBatch413 int64 `json:"rejected_batch_413,omitempty"`
	BudgetExceeded   int64 `json:"budget_exceeded,omitempty"`
	Deadline504      int64 `json:"deadline_504,omitempty"`
	Breaker503       int64 `json:"breaker_503,omitempty"`
}

// endpointCounters is the live (atomic) form of EndpointRejections.
type endpointCounters struct {
	rejected429      atomic.Int64
	rejectedBody413  atomic.Int64
	rejectedBatch413 atomic.Int64
	budgetExceeded   atomic.Int64
	deadline504      atomic.Int64
	breaker503       atomic.Int64
}

// endpointLabel collapses a request path to its endpoint identity, so the
// per-endpoint map cannot be grown unboundedly by per-dataset paths.
func endpointLabel(path string) string {
	if strings.HasPrefix(path, "/v1/datasets/") && path != "/v1/datasets/" {
		return "/v1/datasets/{id}"
	}
	return path
}

// envelope enforces Limits: non-blocking admission against a global and a
// per-dataset in-flight cap, plus the rejection counters /v1/stats
// reports. Admission is deliberately try-acquire — refused work is
// answered 429 immediately rather than parked in an unbounded queue whose
// latency would collapse the node anyway (clients hold the retry state,
// per Retry-After).
type envelope struct {
	limits Limits

	inFlight atomic.Int64

	// mu guards perDataset. Entries exist only while a dataset has
	// admitted requests (release deletes on zero), so hostile never-seen
	// dataset ids cannot grow the map without also holding slots.
	mu         sync.Mutex
	perDataset map[string]int

	rejected429      atomic.Int64
	rejectedBody413  atomic.Int64
	rejectedBatch413 atomic.Int64
	budgetExceeded   atomic.Int64
	deadline504      atomic.Int64
	breaker503       atomic.Int64

	// byEndpoint maps an endpointLabel to its *endpointCounters. Entries are
	// created only on a rejection, so the map stays empty (and invisible in
	// /v1/stats) on a healthy node, and endpointLabel bounds its cardinality.
	byEndpoint sync.Map
}

// newEnvelope returns an envelope enforcing l (with defaults resolved).
func newEnvelope(l Limits) *envelope {
	return &envelope{limits: l.withDefaults(), perDataset: map[string]int{}}
}

// endpoint returns the counters for one endpoint label, creating them on
// first rejection.
func (ev *envelope) endpoint(label string) *endpointCounters {
	if v, ok := ev.byEndpoint.Load(label); ok {
		return v.(*endpointCounters)
	}
	v, _ := ev.byEndpoint.LoadOrStore(label, &endpointCounters{})
	return v.(*endpointCounters)
}

// noteBody413 counts one oversized-body refusal, globally and against r's
// endpoint.
func (ev *envelope) noteBody413(r *http.Request) {
	ev.rejectedBody413.Add(1)
	ev.endpoint(endpointLabel(r.URL.Path)).rejectedBody413.Add(1)
}

// noteBatch413 counts one oversized-batch refusal, globally and against
// r's endpoint.
func (ev *envelope) noteBatch413(r *http.Request) {
	ev.rejectedBatch413.Add(1)
	ev.endpoint(endpointLabel(r.URL.Path)).rejectedBatch413.Add(1)
}

// noteBudget counts one budget-exceeded 503, globally and against r's
// endpoint.
func (ev *envelope) noteBudget(r *http.Request) {
	ev.budgetExceeded.Add(1)
	ev.endpoint(endpointLabel(r.URL.Path)).budgetExceeded.Add(1)
}

// noteDeadline504 counts one query-budget 504, globally and against r's
// endpoint.
func (ev *envelope) noteDeadline504(r *http.Request) {
	ev.deadline504.Add(1)
	ev.endpoint(endpointLabel(r.URL.Path)).deadline504.Add(1)
}

// noteBreaker503 counts one open-breaker refusal, globally and against
// r's endpoint.
func (ev *envelope) noteBreaker503(r *http.Request) {
	ev.breaker503.Add(1)
	ev.endpoint(endpointLabel(r.URL.Path)).breaker503.Add(1)
}

// admit tries to admit one work request against dataset (may be "" for
// requests not addressed to a dataset yet). On success it returns a
// release func the caller must defer, and ok=true. On refusal it returns
// ok=false with the human-readable reason for the 429 body; nothing is
// held.
func (ev *envelope) admit(dataset string) (release func(), reason string, ok bool) {
	defer obsAdmission.Since(obs.Start())
	n := ev.inFlight.Add(1)
	if max := ev.limits.MaxInFlight; max > 0 && n > int64(max) {
		ev.inFlight.Add(-1)
		return nil, fmt.Sprintf("server at capacity (%d in flight)", max), false
	}
	if max := ev.limits.MaxInFlightPerDataset; max > 0 && dataset != "" {
		ev.mu.Lock()
		if ev.perDataset[dataset] >= max {
			ev.mu.Unlock()
			ev.inFlight.Add(-1)
			return nil, fmt.Sprintf("dataset %q at capacity (%d in flight)", dataset, max), false
		}
		ev.perDataset[dataset]++
		ev.mu.Unlock()
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			if ev.limits.MaxInFlightPerDataset > 0 && dataset != "" {
				ev.mu.Lock()
				if ev.perDataset[dataset]--; ev.perDataset[dataset] <= 0 {
					delete(ev.perDataset, dataset)
				}
				ev.mu.Unlock()
			}
			ev.inFlight.Add(-1)
		})
	}, "", true
}

// jitterSeconds renders a Retry-After delay in whole seconds (the
// header's delta-seconds form), jittered ±20% so clients rejected in
// the same instant don't retry in the same instant, and at least 1.
// The 1s default base always renders as 1 (0.8–1.2s rounds to 1), so
// the documented examples stay byte-stable.
func jitterSeconds(base time.Duration) int {
	j := time.Duration(float64(base) * (0.8 + 0.4*rand.Float64()))
	s := int((j + time.Second/2) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

// retryAfterSeconds renders the envelope's advertised Retry-After delay,
// jittered.
func (ev *envelope) retryAfterSeconds() int {
	return jitterSeconds(ev.limits.RetryAfter)
}

// reject429 writes the backpressure response: 429 Too Many Requests with
// the Retry-After header and the reason in the error body, and counts it.
func (ev *envelope) reject429(w http.ResponseWriter, r *http.Request, reason string) {
	ev.rejected429.Add(1)
	ev.endpoint(endpointLabel(r.URL.Path)).rejected429.Add(1)
	secs := ev.retryAfterSeconds()
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, r, http.StatusTooManyRequests, "%s; retry after %ds", reason, secs)
}

// stats snapshots the envelope for /v1/stats.
func (ev *envelope) stats() EnvelopeStats {
	var per map[string]EndpointRejections
	ev.byEndpoint.Range(func(k, v any) bool {
		if per == nil {
			per = map[string]EndpointRejections{}
		}
		c := v.(*endpointCounters)
		per[k.(string)] = EndpointRejections{
			Rejected429:      c.rejected429.Load(),
			RejectedBody413:  c.rejectedBody413.Load(),
			RejectedBatch413: c.rejectedBatch413.Load(),
			BudgetExceeded:   c.budgetExceeded.Load(),
			Deadline504:      c.deadline504.Load(),
			Breaker503:       c.breaker503.Load(),
		}
		return true
	})
	return EnvelopeStats{
		InFlight:              ev.inFlight.Load(),
		MaxInFlight:           ev.limits.MaxInFlight,
		MaxInFlightPerDataset: ev.limits.MaxInFlightPerDataset,
		MaxBodyBytes:          ev.limits.MaxBodyBytes,
		MaxBatchQueries:       ev.limits.MaxBatchQueries,
		RegisterBudgetMs:      ev.limits.RegisterBudget.Milliseconds(),
		QueryBudgetMs:         ev.limits.QueryBudget.Milliseconds(),
		Rejected429:           ev.rejected429.Load(),
		RejectedBody413:       ev.rejectedBody413.Load(),
		RejectedBatch413:      ev.rejectedBatch413.Load(),
		BudgetExceeded:        ev.budgetExceeded.Load(),
		Deadline504:           ev.deadline504.Load(),
		Breaker503:            ev.breaker503.Load(),
		PerEndpoint:           per,
	}
}
