package server

// PATCH /v1/datasets/{id}: the HTTP face of incremental serving. These
// tests pin the happy path (delta applied, version bumped, query flips),
// the error taxonomy (404/400/405/409), the restart loop (maintained
// snapshot reloads with zero Preprocess calls), the /v1/stats maintenance
// counters, and the concurrent PATCH-vs-query contract under -race.

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"pitract/internal/graph"
	"pitract/internal/schemes"
	"pitract/internal/store"
)

// patchJSON issues a PATCH with a PatchRequest and decodes the response.
func patchJSON(t *testing.T, client *http.Client, url string, deltas [][]byte, out interface{}) int {
	t.Helper()
	body, err := json.Marshal(PatchRequest{Deltas: deltas})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPatch, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestPatchMaintainsDataset walks the core loop over HTTP: register, query
// (absent → false), PATCH a delta, query again (present → true, version
// bumped), with GET /v1/datasets/{id} and /v1/stats reflecting the
// maintenance.
func TestPatchMaintainsDataset(t *testing.T) {
	srv := New(store.NewRegistry(""), nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	if code := postJSON(t, client, ts.URL+"/v1/datasets", RegisterRequest{
		ID: "m", Scheme: "list-membership/sorted", Data: schemes.EncodeList([]int64{1, 2, 3}),
	}, nil); code != http.StatusOK {
		t.Fatalf("register: status %d", code)
	}
	var q QueryResponse
	if code := postJSON(t, client, ts.URL+"/v1/query", QueryRequest{
		Dataset: "m", Query: schemes.PointQuery(9),
	}, &q); code != http.StatusOK || q.Answer || q.Version != 0 {
		t.Fatalf("pre-delta query: %d %+v (want 200, false, v0)", code, q)
	}

	var info DatasetInfo
	if code := patchJSON(t, client, ts.URL+"/v1/datasets/m",
		[][]byte{schemes.KeysDelta([]int64{9, 11})}, &info); code != http.StatusOK {
		t.Fatalf("patch: status %d (%+v)", code, info)
	}
	if info.Version != 1 || info.ID != "m" {
		t.Fatalf("patch info %+v, want version 1", info)
	}
	for _, k := range []int64{9, 11, 1} {
		if code := postJSON(t, client, ts.URL+"/v1/query", QueryRequest{
			Dataset: "m", Query: schemes.PointQuery(k),
		}, &q); code != http.StatusOK || !q.Answer || q.Version != 1 {
			t.Fatalf("post-delta query %d: %d %+v (want 200, true, v1)", k, code, q)
		}
	}
	var got DatasetInfo
	if code := getJSON(t, client, ts.URL+"/v1/datasets/m", &got); code != http.StatusOK || got.Version != 1 {
		t.Fatalf("GET dataset: %d %+v (want 200, version 1)", code, got)
	}
	var stats StatsResponse
	if code := getJSON(t, client, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if stats.DeltasApplied != 1 || stats.MaintenanceNs <= 0 {
		t.Fatalf("stats %+v: want deltas_applied 1 and positive maintenance_ns", stats)
	}
}

// TestPatchDeleteLifecycle walks full dynamism over HTTP: tombstone a key
// (query flips to false), re-insert it via upsert (true again), delete it
// once more, with /v1/stats counting the delete-kind deltas and reporting
// zero log replays on a clean run — and a restart over the same directory
// reloading the post-delete state without resurrecting the key.
func TestPatchDeleteLifecycle(t *testing.T) {
	dir := t.TempDir()
	srv := New(store.NewRegistry(dir), nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	if code := postJSON(t, client, ts.URL+"/v1/datasets", RegisterRequest{
		ID: "d", Scheme: "point-selection/sorted-keys", Data: schemes.RelationFromKeys([]int64{2, 4, 6}),
	}, nil); code != http.StatusOK {
		t.Fatalf("register: status %d", code)
	}
	query := func(k int64) (bool, uint64) {
		var q QueryResponse
		if code := postJSON(t, client, ts.URL+"/v1/query", QueryRequest{
			Dataset: "d", Query: schemes.PointQuery(k),
		}, &q); code != http.StatusOK {
			t.Fatalf("query %d: status %d", k, code)
		}
		return q.Answer, q.Version
	}

	var info DatasetInfo
	if code := patchJSON(t, client, ts.URL+"/v1/datasets/d",
		[][]byte{schemes.KeysDeleteDelta([]int64{4, 999})}, &info); code != http.StatusOK {
		t.Fatalf("delete patch: status %d (%+v)", code, info)
	}
	if ok, v := query(4); ok || v != 1 {
		t.Fatalf("key 4 after tombstone: %v v%d (want false, v1)", ok, v)
	}
	if ok, _ := query(2); !ok {
		t.Fatal("tombstone for 4 took key 2 with it")
	}
	if code := patchJSON(t, client, ts.URL+"/v1/datasets/d",
		[][]byte{schemes.KeysUpsertDelta([]int64{4})}, &info); code != http.StatusOK {
		t.Fatalf("upsert patch: status %d", code)
	}
	if ok, v := query(4); !ok || v != 2 {
		t.Fatalf("key 4 after upsert: %v v%d (want true, v2)", ok, v)
	}
	if code := patchJSON(t, client, ts.URL+"/v1/datasets/d",
		[][]byte{schemes.KeysDeleteDelta([]int64{4})}, &info); code != http.StatusOK {
		t.Fatalf("re-delete patch: status %d", code)
	}
	if ok, v := query(4); ok || v != 3 {
		t.Fatalf("key 4 after re-delete: %v v%d (want false, v3)", ok, v)
	}

	var stats StatsResponse
	if code := getJSON(t, client, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if stats.DeltasApplied != 3 || stats.DeltasDeleted != 2 {
		t.Fatalf("stats applied %d deleted %d, want 3 and 2", stats.DeltasApplied, stats.DeltasDeleted)
	}
	if stats.LogReplays != 0 {
		t.Fatalf("clean run reports %d log replays", stats.LogReplays)
	}

	// Restart over the same directory: the tombstone must hold.
	srv2 := New(store.NewRegistry(dir), nil)
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	if code := postJSON(t, ts2.Client(), ts2.URL+"/v1/datasets", RegisterRequest{
		ID: "d", Scheme: "point-selection/sorted-keys", Data: schemes.RelationFromKeys([]int64{2, 4, 6}),
	}, nil); code != http.StatusOK {
		t.Fatalf("re-register: status %d", code)
	}
	var q QueryResponse
	if code := postJSON(t, ts2.Client(), ts2.URL+"/v1/query", QueryRequest{
		Dataset: "d", Query: schemes.PointQuery(4),
	}, &q); code != http.StatusOK || q.Answer || q.Version != 3 {
		t.Fatalf("restart resurrected key 4: %d %+v (want false, v3)", code, q)
	}
}

// TestPatchErrorTaxonomy pins every refusal to its status code, and that a
// refused PATCH leaves the dataset serving its old state.
func TestPatchErrorTaxonomy(t *testing.T) {
	srv := New(store.NewRegistry(""), nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	if code := postJSON(t, client, ts.URL+"/v1/datasets", RegisterRequest{
		ID: "m", Scheme: "list-membership/sorted", Data: schemes.EncodeList([]int64{1, 2, 3}),
	}, nil); code != http.StatusOK {
		t.Fatalf("register: status %d", code)
	}
	if code := postJSON(t, client, ts.URL+"/v1/datasets", RegisterRequest{
		ID: "scan", Scheme: "point-selection/scan", Data: schemes.RelationFromKeys([]int64{1}),
	}, nil); code != http.StatusOK {
		t.Fatalf("register scan: status %d", code)
	}
	if code := postJSON(t, client, ts.URL+"/v1/datasets?shards=2", RegisterRequest{
		ID: "gbfs", Scheme: "reachability/bfs-per-query", Data: smallGraph().Encode(),
	}, nil); code != http.StatusOK {
		t.Fatalf("register sharded bfs: status %d", code)
	}
	if code := postJSON(t, client, ts.URL+"/v1/datasets", RegisterRequest{
		ID: "g", Scheme: "reachability/closure-matrix", Data: smallGraph().Encode(),
	}, nil); code != http.StatusOK {
		t.Fatalf("register closure: status %d", code)
	}

	var e struct {
		Error string `json:"error"`
	}
	cases := []struct {
		name   string
		url    string
		deltas [][]byte
		want   int
	}{
		{"unknown-id", "/v1/datasets/ghost", [][]byte{schemes.KeysDelta([]int64{1})}, http.StatusNotFound},
		{"empty-batch", "/v1/datasets/m", nil, http.StatusBadRequest},
		{"hostile-delta", "/v1/datasets/m", [][]byte{{0xff, 0xff, 0xff}}, http.StatusConflict},
		{"no-incremental-form", "/v1/datasets/scan", [][]byte{schemes.KeysDelta([]int64{2})}, http.StatusConflict},
		{"sharded-without-delta-routing", "/v1/datasets/gbfs", [][]byte{schemes.EdgeDelta(0, 1)}, http.StatusConflict},
		{"delete-absent-edge", "/v1/datasets/g", [][]byte{schemes.EdgeDeleteDelta(0, 3)}, http.StatusConflict},
		{"hostile-tombstone", "/v1/datasets/m", [][]byte{{0xff, 0xff, 0xff, 0x00, 0x02, 0x80}}, http.StatusConflict},
		{"bad-path", "/v1/datasets/", [][]byte{schemes.KeysDelta([]int64{1})}, http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e.Error = ""
			if code := patchJSON(t, client, ts.URL+tc.url, tc.deltas, &e); code != tc.want {
				t.Fatalf("status %d, want %d (error %q)", code, tc.want, e.Error)
			}
			if e.Error == "" {
				t.Fatal("refusal carries no error message")
			}
		})
	}

	// Method taxonomy: PATCH is only valid on the subresource.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/datasets/m", nil)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE on subresource: %d, want 405", resp.StatusCode)
	}

	// All refused: every dataset still serves its registration state.
	var q QueryResponse
	if code := postJSON(t, client, ts.URL+"/v1/query", QueryRequest{
		Dataset: "m", Query: schemes.PointQuery(1),
	}, &q); code != http.StatusOK || !q.Answer || q.Version != 0 {
		t.Fatalf("dataset disturbed by refused PATCHes: %d %+v", code, q)
	}
}

// TestPatchSurvivesRestart is the live-verifiable loop as a test: register
// → PATCH → restart over the same directory → the maintained snapshot
// reloads (preprocess_calls = 0) and still reflects the delta, then keeps
// accepting PATCHes.
func TestPatchSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	data := schemes.RelationFromKeys([]int64{2, 4, 6})

	srv1 := New(store.NewRegistry(dir), nil)
	ts1 := httptest.NewServer(srv1)
	client := ts1.Client()
	if code := postJSON(t, client, ts1.URL+"/v1/datasets", RegisterRequest{
		ID: "d", Scheme: "point-selection/sorted-keys", Data: data,
	}, nil); code != http.StatusOK {
		t.Fatalf("register: status %d", code)
	}
	var info DatasetInfo
	if code := patchJSON(t, client, ts1.URL+"/v1/datasets/d",
		[][]byte{schemes.KeysDelta([]int64{9}), schemes.KeysDelta([]int64{11})}, &info); code != http.StatusOK {
		t.Fatalf("patch: status %d", code)
	}
	if info.Version != 2 {
		t.Fatalf("version %d after 2 deltas", info.Version)
	}
	ts1.Close()

	// Restart: fresh registry over the same snapshot directory.
	srv2 := New(store.NewRegistry(dir), nil)
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	client = ts2.Client()
	if code := postJSON(t, client, ts2.URL+"/v1/datasets", RegisterRequest{
		ID: "d", Scheme: "point-selection/sorted-keys", Data: data,
	}, &info); code != http.StatusOK {
		t.Fatalf("re-register: status %d", code)
	}
	if !info.Loaded || info.Version != 2 {
		t.Fatalf("restart info %+v: want loaded=true, version 2", info)
	}
	var stats StatsResponse
	getJSON(t, client, ts2.URL+"/v1/stats", &stats)
	if stats.PreprocessCalls != 0 || stats.SnapshotLoads != 1 {
		t.Fatalf("restart stats %+v: want preprocess_calls 0, snapshot_loads 1", stats)
	}
	var q QueryResponse
	if code := postJSON(t, client, ts2.URL+"/v1/query", QueryRequest{
		Dataset: "d", Query: schemes.PointQuery(9),
	}, &q); code != http.StatusOK || !q.Answer || q.Version != 2 {
		t.Fatalf("reloaded query: %d %+v (want true at version 2)", code, q)
	}

	// The reloaded dataset keeps accepting deltas from where it left off.
	if code := patchJSON(t, client, ts2.URL+"/v1/datasets/d",
		[][]byte{schemes.KeysDelta([]int64{13})}, &info); code != http.StatusOK || info.Version != 3 {
		t.Fatalf("post-restart patch: %d %+v (want version 3)", code, info)
	}
}

// TestPatchQueryRaceOverHTTP races PATCH writers against query readers
// through the full HTTP stack under -race: reported versions must be
// monotonic per client, and a version that claims delta i committed must
// come with delta i's key visible.
func TestPatchQueryRaceOverHTTP(t *testing.T) {
	srv := New(store.NewRegistry(t.TempDir()), nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	keys := make([]int64, 32)
	for i := range keys {
		keys[i] = int64(2 * i)
	}
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/datasets", RegisterRequest{
		ID: "d", Scheme: "point-selection/sorted-keys", Data: schemes.RelationFromKeys(keys),
	}, nil); code != http.StatusOK {
		t.Fatalf("register: status %d", code)
	}

	const deltas = 24
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		client := &http.Client{}
		for i := 0; i < deltas; i++ {
			var info DatasetInfo
			if code := patchJSON(t, client, ts.URL+"/v1/datasets/d",
				[][]byte{schemes.KeysDelta([]int64{int64(1001 + 2*i)})}, &info); code != http.StatusOK {
				t.Errorf("patch %d: status %d", i, code)
				return
			}
			if info.Version != uint64(i+1) {
				t.Errorf("patch %d: version %d, want %d", i, info.Version, i+1)
				return
			}
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			client := &http.Client{}
			rng := rand.New(rand.NewSource(int64(r) + 7))
			var last uint64
			for j := 0; j < 60; j++ {
				i := rng.Intn(deltas)
				var q QueryResponse
				if code := postJSON(t, client, ts.URL+"/v1/query", QueryRequest{
					Dataset: "d", Query: schemes.PointQuery(int64(1001 + 2*i)),
				}, &q); code != http.StatusOK {
					t.Errorf("query: status %d", code)
					return
				}
				if q.Version < last {
					t.Errorf("reported version went backwards: %d after %d", q.Version, last)
					return
				}
				last = q.Version
				if q.Version >= uint64(i+1) && !q.Answer {
					t.Errorf("version %d claims delta %d applied but its key is invisible", q.Version, i)
					return
				}
			}
		}(r)
	}
	wg.Wait()

	var stats StatsResponse
	getJSON(t, ts.Client(), ts.URL+"/v1/stats", &stats)
	if stats.DeltasApplied != deltas {
		t.Fatalf("stats count %d deltas, want %d", stats.DeltasApplied, deltas)
	}
}

// TestPatchShardedOverHTTP exercises the sharded PATCH path end-to-end: a
// hash-partitioned membership dataset accepts key deltas that split across
// shards, and the verdicts and version reflect them.
func TestPatchShardedOverHTTP(t *testing.T) {
	srv := New(store.NewRegistry(t.TempDir()), nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	if code := postJSON(t, client, ts.URL+"/v1/datasets?shards=3", RegisterRequest{
		ID: "m", Scheme: "list-membership/sorted", Data: schemes.EncodeList([]int64{1, 2, 3}),
	}, nil); code != http.StatusOK {
		t.Fatalf("register: status %d", code)
	}
	inserted := []int64{100, 101, 102, 103, 104, 105, 106, 107}
	var info DatasetInfo
	if code := patchJSON(t, client, ts.URL+"/v1/datasets/m",
		[][]byte{schemes.KeysDelta(inserted)}, &info); code != http.StatusOK {
		t.Fatalf("sharded patch: status %d (%+v)", code, info)
	}
	if info.Version != 1 || info.Shards != 3 {
		t.Fatalf("sharded patch info %+v, want version 1 over 3 shards", info)
	}
	queries := make([][]byte, 0, len(inserted)+2)
	for _, k := range inserted {
		queries = append(queries, schemes.PointQuery(k))
	}
	queries = append(queries, schemes.PointQuery(1), schemes.PointQuery(999))
	var batch BatchResponse
	if code := postJSON(t, client, ts.URL+"/v1/query/batch", BatchRequest{
		Dataset: "m", Queries: queries,
	}, &batch); code != http.StatusOK {
		t.Fatalf("batch: status %d", code)
	}
	for i := range inserted {
		if !batch.Answers[i] {
			t.Fatalf("inserted key %d invisible after sharded PATCH", inserted[i])
		}
	}
	if !batch.Answers[len(inserted)] || batch.Answers[len(inserted)+1] {
		t.Fatalf("sharded PATCH disturbed pre-existing verdicts: %v", batch.Answers)
	}
	if batch.Version != 1 {
		t.Fatalf("batch version %d, want 1", batch.Version)
	}
}

// TestPatchPersistFailureIs500 pins the error taxonomy's server-fault
// class: when the deltas are applicable but the snapshot rewrite fails,
// PATCH answers 500 (retryable server fault), not 409, and commits
// nothing.
func TestPatchPersistFailureIs500(t *testing.T) {
	// A registry whose data "directory" is a plain file: registration in
	// memory-only mode is impossible (the dir is fixed at construction),
	// so point the registry at tmp/x where x is a file — MkdirAll fails on
	// every snapshot write.
	blocked := filepath.Join(t.TempDir(), "x")
	if err := os.WriteFile(blocked, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := store.NewRegistry(filepath.Join(blocked, "data"))
	srv := New(reg, nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	// Registration also wants to persist and fails; build the entry
	// through the registry seam directly so only maintenance persistence
	// is under test.
	st := &store.Store{ID: "d", Scheme: schemes.PointSelectionScheme()}
	prep, err := st.Scheme.Preprocess(schemes.RelationFromKeys([]int64{2, 4}))
	if err != nil {
		t.Fatal(err)
	}
	st.Prep = prep
	if _, err := reg.RegisterDataset("d", nil, func() (store.Dataset, error) { return st, nil }); err != nil {
		t.Fatal(err)
	}

	var e struct {
		Error string `json:"error"`
	}
	if code := patchJSON(t, client, ts.URL+"/v1/datasets/d",
		[][]byte{schemes.KeysDelta([]int64{9})}, &e); code != http.StatusInternalServerError {
		t.Fatalf("persist failure: status %d (%q), want 500", code, e.Error)
	}
	var q QueryResponse
	if code := postJSON(t, client, ts.URL+"/v1/query", QueryRequest{
		Dataset: "d", Query: schemes.PointQuery(9),
	}, &q); code != http.StatusOK || q.Answer || q.Version != 0 {
		t.Fatalf("failed persist leaked state: %d %+v", code, q)
	}
}

// TestDatasetByIDEscaping pins the id decoding of the subresource path:
// the escaped path segment is unescaped exactly once, so ids containing
// '%' are addressable and an escaped id can never alias another dataset.
func TestDatasetByIDEscaping(t *testing.T) {
	srv := New(store.NewRegistry(""), nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	// "%78" percent-decodes to "x": if the server double-decoded, reading
	// one would alias the other.
	for i, id := range []string{"x", "%78", "50%"} {
		if code := postJSON(t, client, ts.URL+"/v1/datasets", RegisterRequest{
			ID: id, Scheme: "list-membership/sorted", Data: schemes.EncodeList([]int64{int64(i)}),
		}, nil); code != http.StatusOK {
			t.Fatalf("register %q: status %d", id, code)
		}
	}
	var info DatasetInfo
	for _, tc := range []struct{ path, wantID string }{
		{"/v1/datasets/x", "x"},
		{"/v1/datasets/%2578", "%78"}, // %25 = '%', so this addresses id "%78"
		{"/v1/datasets/50%25", "50%"},
	} {
		if code := getJSON(t, client, ts.URL+tc.path, &info); code != http.StatusOK || info.ID != tc.wantID {
			t.Fatalf("GET %s: status %d id %q, want 200 id %q", tc.path, code, info.ID, tc.wantID)
		}
	}
	// PATCHing the escaped id must mutate it, not its decoded alias.
	if code := patchJSON(t, client, ts.URL+"/v1/datasets/%2578",
		[][]byte{schemes.KeysDelta([]int64{42})}, &info); code != http.StatusOK || info.ID != "%78" || info.Version != 1 {
		t.Fatalf("PATCH escaped id: status %d %+v", code, info)
	}
	if code := getJSON(t, client, ts.URL+"/v1/datasets/x", &info); code != http.StatusOK || info.Version != 0 {
		t.Fatalf("alias dataset mutated: %+v", info)
	}
}

// smallGraph builds a tiny directed graph for registration fixtures.
func smallGraph() *graph.Graph {
	return graph.CommunityGraph(2, 4, 6, 3)
}
