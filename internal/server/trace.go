package server

// Request tracing: every request gets an id — the client's X-Request-ID
// when it sent a plausible one, a generated one otherwise — echoed in the
// response header, carried in the request context for the error bodies,
// and attached to the structured request / slow-query log lines. The
// middleware also hosts GET /metrics' content type; the exposition itself
// is rendered by the process-wide obs.Default registry.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"pitract/internal/obs"
)

// RequestIDHeader is the header the tracing middleware reads and echoes.
const RequestIDHeader = "X-Request-ID"

// maxInboundRequestID bounds accepted client-supplied ids; longer (or
// non-printable) values are replaced with a generated id rather than
// echoed, so a hostile header cannot ride into logs or error bodies.
const maxInboundRequestID = 128

type ctxKey int

const requestIDKey ctxKey = 0

// reqIDInfo is the per-request trace identity stored in the context.
type reqIDInfo struct {
	id         string
	fromClient bool
}

// clientRequestID returns the request's id and whether the client supplied
// it. Error bodies include the id only in the fromClient case — a client
// correlating its own trace — while generated ids travel in the response
// header alone, keeping byte-stable error bodies for clients that sent no
// id.
func clientRequestID(r *http.Request) (string, bool) {
	if r == nil {
		return "", false
	}
	if info, ok := r.Context().Value(requestIDKey).(reqIDInfo); ok {
		return info.id, info.fromClient
	}
	return "", false
}

// validInboundID reports whether a client-supplied id is safe to echo:
// non-empty, bounded, printable ASCII with no spaces.
func validInboundID(s string) bool {
	if s == "" || len(s) > maxInboundRequestID {
		return false
	}
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < '!' || c > '~' {
			return false
		}
	}
	return true
}

// Generated ids are <process-prefix>-<counter>: the prefix is random per
// process so ids from restarts never collide, the counter keeps per-request
// generation down to one atomic add.
var (
	idPrefixOnce sync.Once
	idPrefix     string
	idCounter    atomic.Uint64
)

func newRequestID() string {
	idPrefixOnce.Do(func() {
		var b [6]byte
		if _, err := rand.Read(b[:]); err != nil {
			// crypto/rand failing is a broken platform; ids only need
			// uniqueness, so fall back to a fixed prefix.
			idPrefix = "pitract"
			return
		}
		idPrefix = hex.EncodeToString(b[:])
	})
	return fmt.Sprintf("%s-%d", idPrefix, idCounter.Add(1))
}

// statusRecorder captures the response status for the request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(p)
}

// withObservability wraps next with the tracing middleware: request-ID
// assignment + header echo always; per-request structured logging and the
// slow-query log only when a logger is installed, so the unlogged path
// stays one header write and one context value.
func (s *Server) withObservability(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		info := reqIDInfo{id: r.Header.Get(RequestIDHeader), fromClient: true}
		if !validInboundID(info.id) {
			info = reqIDInfo{id: newRequestID()}
		}
		w.Header().Set(RequestIDHeader, info.id)
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey, info))

		if s.logger == nil {
			next.ServeHTTP(w, r)
			return
		}
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rec, r)
		elapsed := time.Since(start)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		attrs := []slog.Attr{
			slog.String("request_id", info.id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", rec.status),
			slog.Duration("elapsed", elapsed),
		}
		s.logger.LogAttrs(r.Context(), slog.LevelDebug, "request", attrs...)
		if s.slowQuery > 0 && elapsed >= s.slowQuery {
			s.logger.LogAttrs(r.Context(), slog.LevelWarn, "slow request",
				append(attrs, slog.Duration("threshold", s.slowQuery))...)
		}
	})
}

// handleMetrics serves GET /metrics: the Prometheus text exposition of the
// process-wide obs.Default registry. It is never metered by the serving
// envelope — observability must survive saturation.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, http.StatusMethodNotAllowed, "use GET")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.Default.WritePrometheus(w)
}
