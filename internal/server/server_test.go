package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pitract/internal/core"
	"pitract/internal/graph"
	"pitract/internal/schemes"
	"pitract/internal/store"
)

// postJSON posts v and decodes the response into out, returning the status.
func postJSON(t *testing.T, client *http.Client, url string, v, out interface{}) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, client *http.Client, url string, out interface{}) int {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// countingCatalog wraps every scheme in cat so Preprocess invocations are
// counted per scheme name.
func countingCatalog(cat map[string]*core.Scheme, counts map[string]*int64) map[string]*core.Scheme {
	out := map[string]*core.Scheme{}
	for name, s := range cat {
		var n int64
		counts[name] = &n
		wrapped := *s
		inner := s.Preprocess
		ctr := &n
		wrapped.Preprocess = func(d []byte) ([]byte, error) {
			atomic.AddInt64(ctr, 1)
			return inner(d)
		}
		out[name] = &wrapped
	}
	return out
}

// testWorkload is one dataset: its registration request plus query pairs
// with the expected verdict from a direct Scheme.Answer call.
type testWorkload struct {
	id      string
	scheme  string
	data    []byte
	queries [][]byte
	want    []bool
}

// buildWorkloads assembles three datasets over three different schemes and
// computes every expected verdict directly (Preprocess + Answer, no
// server).
func buildWorkloads(t *testing.T) []testWorkload {
	t.Helper()
	rng := rand.New(rand.NewSource(99))

	keys := make([]int64, 200)
	for i := range keys {
		keys[i] = int64(rng.Intn(500))
	}
	point := testWorkload{id: "keys", scheme: "point-selection/sorted-keys",
		data: schemes.RelationFromKeys(keys)}
	for i := 0; i < 40; i++ {
		point.queries = append(point.queries, schemes.PointQuery(int64(rng.Intn(600))))
	}

	g := graph.RandomDirected(96, 400, 17)
	reach := testWorkload{id: "graph", scheme: "reachability/closure-matrix", data: g.Encode()}
	for i := 0; i < 40; i++ {
		reach.queries = append(reach.queries, schemes.NodePairQuery(rng.Intn(96), rng.Intn(96)))
	}

	list := make([]int64, 150)
	for i := range list {
		list[i] = int64(rng.Intn(400))
	}
	member := testWorkload{id: "list", scheme: "list-membership/sorted",
		data: schemes.EncodeList(list)}
	for i := 0; i < 40; i++ {
		member.queries = append(member.queries, schemes.PointQuery(int64(rng.Intn(500))))
	}

	ws := []testWorkload{point, reach, member}
	cat := Catalog()
	for wi := range ws {
		w := &ws[wi]
		scheme := cat[w.scheme]
		pd, err := scheme.Preprocess(w.data)
		if err != nil {
			t.Fatalf("%s: direct preprocess: %v", w.id, err)
		}
		for _, q := range w.queries {
			got, err := scheme.Answer(pd, q)
			if err != nil {
				t.Fatalf("%s: direct answer: %v", w.id, err)
			}
			w.want = append(w.want, got)
		}
	}
	return ws
}

// TestServerConcurrentRoundTrip is the acceptance suite: three datasets
// over three schemes, ≥1000 concurrent mixed single/batch queries through
// an httptest server, every verdict identical to the direct Scheme.Answer
// result, and exactly one Preprocess per dataset across the whole run —
// including racing re-registrations.
func TestServerConcurrentRoundTrip(t *testing.T) {
	counts := map[string]*int64{}
	catalog := countingCatalog(Catalog(), counts)
	srv := New(store.NewRegistry(""), catalog)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()
	client.Transport = &http.Transport{MaxIdleConnsPerHost: 64}

	workloads := buildWorkloads(t)
	for _, w := range workloads {
		var info DatasetInfo
		if code := postJSON(t, client, ts.URL+"/v1/datasets",
			RegisterRequest{ID: w.id, Scheme: w.scheme, Data: w.data}, &info); code != http.StatusOK {
			t.Fatalf("register %s: status %d", w.id, code)
		}
		if info.ID != w.id || info.Scheme != w.scheme || info.PrepBytes == 0 {
			t.Fatalf("register %s: bad info %+v", w.id, info)
		}
	}

	const (
		workers         = 25
		roundsPerWorker = 8 // each round: 3 single + 1 batch per workload
	)
	var queriesServed atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for wk := 0; wk < workers; wk++ {
		go func(wk int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(wk)))
			for round := 0; round < roundsPerWorker; round++ {
				for _, w := range workloads {
					// A few random single queries…
					for j := 0; j < 3; j++ {
						i := rng.Intn(len(w.queries))
						var qr QueryResponse
						if code := postJSON(t, client, ts.URL+"/v1/query",
							QueryRequest{Dataset: w.id, Query: w.queries[i]}, &qr); code != http.StatusOK {
							t.Errorf("%s query %d: status %d", w.id, i, code)
							return
						}
						if qr.Answer != w.want[i] {
							t.Errorf("%s query %d: served %v, direct Answer %v", w.id, i, qr.Answer, w.want[i])
							return
						}
						queriesServed.Add(1)
					}
					// …and the full batch through the worker pool.
					var br BatchResponse
					if code := postJSON(t, client, ts.URL+"/v1/query/batch",
						BatchRequest{Dataset: w.id, Queries: w.queries, Parallelism: 4}, &br); code != http.StatusOK {
						t.Errorf("%s batch: status %d", w.id, code)
						return
					}
					if len(br.Answers) != len(w.want) {
						t.Errorf("%s batch: %d answers, want %d", w.id, len(br.Answers), len(w.want))
						return
					}
					for i := range br.Answers {
						if br.Answers[i] != w.want[i] {
							t.Errorf("%s batch query %d: served %v, direct Answer %v",
								w.id, i, br.Answers[i], w.want[i])
							return
						}
					}
					queriesServed.Add(int64(len(w.queries)))
					// Occasionally re-register mid-flight: must hit the memo,
					// never a second Preprocess.
					if round%4 == 3 {
						var info DatasetInfo
						if code := postJSON(t, client, ts.URL+"/v1/datasets",
							RegisterRequest{ID: w.id, Scheme: w.scheme, Data: w.data}, &info); code != http.StatusOK {
							t.Errorf("%s re-register: status %d", w.id, code)
							return
						}
					}
				}
			}
		}(wk)
	}
	wg.Wait()

	if n := queriesServed.Load(); n < 1000 {
		t.Fatalf("served %d queries, want >= 1000", n)
	}
	for _, w := range workloads {
		if n := atomic.LoadInt64(counts[w.scheme]); n != 1 {
			t.Errorf("scheme %s: Preprocess ran %d times, want exactly 1", w.scheme, n)
		}
	}

	var stats StatsResponse
	if code := getJSON(t, client, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if stats.Datasets != len(workloads) || stats.PreprocessCalls != int64(len(workloads)) {
		t.Errorf("stats: %+v, want %d datasets each preprocessed once", stats, len(workloads))
	}
	if stats.Queries != queriesServed.Load() {
		t.Errorf("stats counted %d queries, served %d", stats.Queries, queriesServed.Load())
	}
	for _, w := range workloads {
		ss, ok := stats.PerScheme[w.scheme]
		if !ok || ss.Queries == 0 || ss.LatencyNs == 0 || ss.Errors != 0 {
			t.Errorf("stats for %s missing or empty: %+v", w.scheme, ss)
		}
	}

	var list struct {
		Datasets []DatasetInfo `json:"datasets"`
	}
	if code := getJSON(t, client, ts.URL+"/v1/datasets", &list); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	if len(list.Datasets) != len(workloads) {
		t.Fatalf("listed %d datasets, want %d", len(list.Datasets), len(workloads))
	}
}

func TestServerErrorPaths(t *testing.T) {
	srv := New(store.NewRegistry(""), nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	var e struct {
		Error string `json:"error"`
	}
	if code := postJSON(t, client, ts.URL+"/v1/datasets",
		RegisterRequest{ID: "x", Scheme: "no-such-scheme"}, &e); code != http.StatusBadRequest {
		t.Errorf("unknown scheme: status %d, want 400", code)
	}
	if e.Error == "" || !strings.Contains(e.Error, "no-such-scheme") {
		t.Errorf("unknown scheme: unhelpful error %q", e.Error)
	}
	if code := postJSON(t, client, ts.URL+"/v1/query",
		QueryRequest{Dataset: "missing"}, &e); code != http.StatusNotFound {
		t.Errorf("missing dataset: status %d, want 404", code)
	}
	if code := postJSON(t, client, ts.URL+"/v1/datasets",
		RegisterRequest{Scheme: "point-selection/sorted-keys"}, &e); code != http.StatusBadRequest {
		t.Errorf("missing id: status %d, want 400", code)
	}
	resp, err := client.Post(ts.URL+"/v1/query", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}
	if code := getJSON(t, client, ts.URL+"/v1/query", nil); code != http.StatusMethodNotAllowed {
		t.Errorf("GET on query: status %d, want 405", code)
	}

	// A registered dataset with a malformed query must 422, not crash, and
	// the error must be counted.
	if code := postJSON(t, client, ts.URL+"/v1/datasets", RegisterRequest{
		ID: "keys", Scheme: "point-selection/sorted-keys",
		Data: schemes.RelationFromKeys([]int64{1, 2, 3}),
	}, nil); code != http.StatusOK {
		t.Fatalf("register: status %d", code)
	}
	if code := postJSON(t, client, ts.URL+"/v1/query",
		QueryRequest{Dataset: "keys", Query: []byte{0xFF, 0xFF}}, &e); code != http.StatusUnprocessableEntity {
		t.Errorf("malformed query: status %d, want 422", code)
	}
	var stats StatsResponse
	getJSON(t, client, ts.URL+"/v1/stats", &stats)
	if stats.PerScheme["point-selection/sorted-keys"].Errors != 1 {
		t.Errorf("query error not counted: %+v", stats.PerScheme)
	}
}

func TestServerHealthz(t *testing.T) {
	srv := New(store.NewRegistry(""), nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	var h struct {
		Status   string `json:"status"`
		Datasets int    `json:"datasets"`
	}
	if code := getJSON(t, ts.Client(), ts.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	if h.Status != "ok" || h.Datasets != 0 {
		t.Fatalf("healthz: %+v", h)
	}
}

// TestServerGracefulShutdown runs the real listener path: serve on :0,
// answer a query, shut down, and verify Serve returns nil with the port
// closed.
func TestServerGracefulShutdown(t *testing.T) {
	srv := New(store.NewRegistry(""), nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	client := &http.Client{Timeout: 5 * time.Second}
	if code := postJSON(t, client, base+"/v1/datasets", RegisterRequest{
		ID: "keys", Scheme: "point-selection/sorted-keys",
		Data: schemes.RelationFromKeys([]int64{4}),
	}, nil); code != http.StatusOK {
		t.Fatalf("register: status %d", code)
	}
	var qr QueryResponse
	if code := postJSON(t, client, base+"/v1/query",
		QueryRequest{Dataset: "keys", Query: schemes.PointQuery(4)}, &qr); code != http.StatusOK || !qr.Answer {
		t.Fatalf("query: status %d answer %v", code, qr.Answer)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v after graceful shutdown, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	if _, err := client.Get(base + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}

// TestServerShardedRegistrationAndServing registers the same dataset
// unsharded and sharded (?shards=2 and ?shards=4), serves an identical
// query mix through /v1/query and /v1/query/batch, and requires every
// sharded verdict byte-identical to the unsharded one — cross-shard
// reachability pairs included.
func TestServerShardedRegistrationAndServing(t *testing.T) {
	srv := New(store.NewRegistry(""), nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	g := graph.CommunityGraph(4, 12, 30, 21)
	rng := rand.New(rand.NewSource(5))
	queries := make([][]byte, 200)
	for i := range queries {
		queries[i] = schemes.NodePairQuery(rng.Intn(g.N()), rng.Intn(g.N()))
	}

	var base DatasetInfo
	if code := postJSON(t, client, ts.URL+"/v1/datasets", RegisterRequest{
		ID: "flat", Scheme: "reachability/closure-matrix", Data: g.Encode(),
	}, &base); code != http.StatusOK {
		t.Fatalf("register flat: status %d", code)
	}
	if base.Shards != 1 {
		t.Fatalf("unsharded registration reports %d shards", base.Shards)
	}
	want := make([]bool, len(queries))
	for i, q := range queries {
		var qr QueryResponse
		if code := postJSON(t, client, ts.URL+"/v1/query",
			QueryRequest{Dataset: "flat", Query: q}, &qr); code != http.StatusOK {
			t.Fatalf("flat query %d: status %d", i, code)
		}
		want[i] = qr.Answer
	}

	for _, n := range []int{2, 4} {
		for _, part := range []string{"hash", "range"} {
			id := fmt.Sprintf("sharded-%d-%s", n, part)
			var info DatasetInfo
			url := fmt.Sprintf("%s/v1/datasets?shards=%d&partitioner=%s", ts.URL, n, part)
			if code := postJSON(t, client, url, RegisterRequest{
				ID: id, Scheme: "reachability/closure-matrix", Data: g.Encode(),
			}, &info); code != http.StatusOK {
				t.Fatalf("register %s: status %d", id, code)
			}
			if info.Shards != n {
				t.Fatalf("%s: info reports %d shards, want %d", id, info.Shards, n)
			}
			if info.PrepBytes == 0 {
				t.Errorf("%s: empty sharded artifact", id)
			}
			for i, q := range queries {
				var qr QueryResponse
				if code := postJSON(t, client, ts.URL+"/v1/query",
					QueryRequest{Dataset: id, Query: q}, &qr); code != http.StatusOK {
					t.Fatalf("%s query %d: status %d", id, i, code)
				}
				if qr.Answer != want[i] {
					t.Fatalf("%s query %d: sharded %v, unsharded %v", id, i, qr.Answer, want[i])
				}
			}
			var br BatchResponse
			if code := postJSON(t, client, ts.URL+"/v1/query/batch", BatchRequest{
				Dataset: id, Queries: queries, Parallelism: 4,
			}, &br); code != http.StatusOK {
				t.Fatalf("%s batch: status %d", id, code)
			}
			for i := range br.Answers {
				if br.Answers[i] != want[i] {
					t.Fatalf("%s batch query %d: sharded %v, unsharded %v", id, i, br.Answers[i], want[i])
				}
			}
		}
	}

	// The dataset listing reports shard counts.
	var list struct {
		Datasets []DatasetInfo `json:"datasets"`
	}
	if code := getJSON(t, client, ts.URL+"/v1/datasets", &list); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	byID := map[string]DatasetInfo{}
	for _, d := range list.Datasets {
		byID[d.ID] = d
	}
	if byID["flat"].Shards != 1 || byID["sharded-4-range"].Shards != 4 {
		t.Fatalf("listing shard counts wrong: %+v", byID)
	}
}

// TestServerShardedParamErrors pins the 400s for bad sharding parameters
// and the 409 for hostile payloads on the sharded path.
func TestServerShardedParamErrors(t *testing.T) {
	srv := New(store.NewRegistry(""), nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	var e struct {
		Error string `json:"error"`
	}
	ok := RegisterRequest{ID: "x", Scheme: "reachability/closure-matrix", Data: graph.Path(4, true).Encode()}
	for _, c := range []struct {
		params string
		want   int
	}{
		{"?shards=0", http.StatusBadRequest},
		{"?shards=-3", http.StatusBadRequest},
		{"?shards=bogus", http.StatusBadRequest},
		{"?shards=100000", http.StatusBadRequest},
		{"?shards=2&partitioner=zodiac", http.StatusBadRequest},
	} {
		if code := postJSON(t, client, ts.URL+"/v1/datasets"+c.params, ok, &e); code != c.want {
			t.Errorf("%s: status %d, want %d (%s)", c.params, code, c.want, e.Error)
		}
	}
	// A scheme without a sharded form is a client error, not a 409.
	if code := postJSON(t, client, ts.URL+"/v1/datasets?shards=2",
		RegisterRequest{ID: "b", Scheme: "bds/visit-order", Data: graph.Path(4, true).Encode()}, &e); code != http.StatusBadRequest {
		t.Errorf("unshardable scheme: status %d, want 400 (%s)", code, e.Error)
	}
	// Hostile payload through the sharded path: clean 409, process alive.
	if code := postJSON(t, client, ts.URL+"/v1/datasets?shards=2",
		RegisterRequest{ID: "h", Scheme: "reachability/closure-matrix", Data: []byte{0xff, 0xff, 0xff}}, &e); code != http.StatusConflict {
		t.Errorf("hostile sharded payload: status %d, want 409 (%s)", code, e.Error)
	}
	if code := getJSON(t, client, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Errorf("server unhealthy after hostile registration: %d", code)
	}
}

// TestServerDefaultSharding: a server started with -shards style defaults
// shards registrations that carry no explicit parameter.
func TestServerDefaultSharding(t *testing.T) {
	srv := New(store.NewRegistry(""), nil)
	if err := srv.SetDefaultSharding(3, "range"); err != nil {
		t.Fatal(err)
	}
	if err := srv.SetDefaultSharding(2, "zodiac"); err == nil {
		t.Fatal("bad default partitioner must be rejected")
	}
	if err := srv.SetDefaultSharding(maxShards+1, ""); err == nil {
		t.Fatal("default shards beyond the cap must be rejected")
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	g := graph.CommunityGraph(3, 8, 12, 2)
	var info DatasetInfo
	if code := postJSON(t, client, ts.URL+"/v1/datasets", RegisterRequest{
		ID: "g", Scheme: "reachability/closure-matrix", Data: g.Encode(),
	}, &info); code != http.StatusOK {
		t.Fatalf("register: status %d", code)
	}
	if info.Shards != 3 {
		t.Fatalf("default sharding not applied: %d shards, want 3", info.Shards)
	}
	// The server-wide default must not make unshardable schemes
	// unregistrable: BDS falls back to unsharded (explicit ?shards=2 on it
	// stays a 400, covered in TestServerShardedParamErrors).
	if code := postJSON(t, client, ts.URL+"/v1/datasets", RegisterRequest{
		ID: "b", Scheme: "bds/visit-order", Data: graph.Path(6, false).Encode(),
	}, &info); code != http.StatusOK {
		t.Fatalf("unshardable scheme under a -shards default: status %d, want 200", code)
	}
	if info.Shards != 1 {
		t.Fatalf("unshardable scheme registered with %d shards, want the unsharded fallback", info.Shards)
	}
	// An explicit ?shards=1 overrides the default back to unsharded.
	if code := postJSON(t, client, ts.URL+"/v1/datasets?shards=1", RegisterRequest{
		ID: "flat", Scheme: "reachability/closure-matrix", Data: g.Encode(),
	}, &info); code != http.StatusOK {
		t.Fatalf("register flat: status %d", code)
	}
	if info.Shards != 1 {
		t.Fatalf("?shards=1 did not override the default: %d shards", info.Shards)
	}
	got, err := srv.Registry().GetDataset("g")
	if !err || got.ShardCount() != 3 {
		t.Fatalf("registry dataset: %v %v", got, err)
	}
}
