// Package server exposes a registry of preprocessed stores as an HTTP JSON
// API — the serving face of the paper's preprocess-once/answer-many
// asymmetry. A dataset is POSTed once, paying the PTIME preprocessing (or a
// snapshot reload) up front; every query thereafter rides the NC answering
// path, and batches go through the same AnswerBatch worker pools the
// library uses in-process.
//
// Endpoints:
//
//	GET   /healthz              liveness + dataset count + per-dataset
//	                            health states (?verbose=0 for the bare
//	                            liveness shape)
//	POST  /v1/datasets          register (and preprocess) a dataset; ?shards=n
//	                            partitions it across n preprocessed stores
//	GET   /v1/datasets          list registered datasets
//	GET   /v1/datasets/{id}     describe one dataset
//	PATCH /v1/datasets/{id}     apply a delta batch: Π(D ⊕ ∆D) maintained in
//	                            place through the scheme's incremental form
//	POST  /v1/query             answer one query
//	POST  /v1/query/batch       answer a batch through the worker pool
//	GET   /v1/stats             per-scheme query counts, latency totals and
//	                            percentiles, deltas applied and maintenance
//	                            latency, per-stage latency percentiles,
//	                            uptime and build info, and answer-cache
//	                            counters when a cache is set
//	GET   /metrics              Prometheus text exposition of every stage
//	                            histogram, counter, and gauge (never metered
//	                            by the serving envelope)
//
// Data, queries, and deltas travel base64-encoded (encoding/json's []byte
// rule), so the wire format is exactly the library's byte-string instance
// encoding.
//
// The answer paths are routed through store.Dataset, so a dataset
// registered with ?shards=n (or under the CLI's -shards default) serves
// /v1/query and /v1/query/batch from its internal/shard fan-out/merge
// machinery with no client-visible difference except the shards field in
// DatasetInfo. Every store answers through its prepared (decoded-once)
// form, and with SetAnswerCache (the -cache-bytes flag) a version-keyed
// verdict cache with singleflight coalescing sits in front of both answer
// paths.
//
// A serving envelope (see Limits and SetLimits) bounds what one request
// or one burst can cost: oversized bodies and batches are refused with
// 413, work beyond the configured concurrency limits with 429 +
// Retry-After, and registrations or delta batches that outrun their wall
// budget are abandoned with 503 and no catalog side effects. Queries
// carry their own deadline (Limits.QueryBudget, `pitract serve
// -query-budget-ms`): an overrun is abandoned with 504. Each dataset is
// fronted by a health circuit breaker — repeated serve-path failures trip
// it open and further traffic is refused fast with 503 + Retry-After
// until a backoff-paced probe succeeds; datasets with a declared
// degraded-mode fallback keep answering (marked "degraded") while
// unhealthy. See docs/API.md for the full request/response reference and
// docs/ARCHITECTURE.md for the fault-tolerance design.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/url"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pitract/internal/cache"
	"pitract/internal/core"
	"pitract/internal/obs"
	"pitract/internal/schemes"
	"pitract/internal/shard"
	"pitract/internal/store"
)

// Catalog returns the schemes a server offers for registration, keyed by
// scheme name. It covers every decision scheme from the paper's case
// studies that answers against a preprocessed store.
func Catalog() map[string]*core.Scheme {
	cat := map[string]*core.Scheme{}
	for _, s := range []*core.Scheme{
		schemes.PointSelectionScheme(),
		schemes.PointSelectionScanScheme(),
		schemes.RangeSelectionScheme(),
		schemes.ListMembershipScheme(),
		schemes.ReachabilityScheme(),
		schemes.ReachabilityLabelsScheme(),
		schemes.ReachabilityBFSScheme(),
		schemes.BDSScheme(),
		schemes.CVPGateValueScheme(),
	} {
		cat[s.Name()] = s
	}
	return cat
}

// maxBatchParallelism caps the client-supplied worker count for batch
// answering; AnswerBatch only clamps to len(queries), so without a
// server-side bound one request could demand a goroutine per query.
const maxBatchParallelism = 256

// schemeStats is the wire form of one scheme's serving counters. The
// percentile columns are estimated from the scheme's answer-latency
// histogram (see internal/obs) and are zero until something is recorded —
// including when metrics are disabled.
type schemeStats struct {
	Queries int64 `json:"queries"`
	Errors  int64 `json:"errors"`
	// QueriesFailed counts queries that were admitted but not answered: 1
	// per failed single query, the whole batch for a failed batch (answer
	// errors fail fast and return no verdicts).
	QueriesFailed int64 `json:"queries_failed"`
	LatencyNs     int64 `json:"latency_ns"`
	P50Ns         int64 `json:"p50_ns"`
	P90Ns         int64 `json:"p90_ns"`
	P99Ns         int64 `json:"p99_ns"`
	P999Ns        int64 `json:"p999_ns"`
}

// schemeCounters accumulates one scheme's serving counters. The fields are
// atomics — the answer path bumps them lock-free, so bookkeeping never
// serializes concurrent requests the way the old single-mutex counters did
// (every request across every scheme used to contend on one statsMu).
type schemeCounters struct {
	queries   atomic.Int64
	errors    atomic.Int64
	failed    atomic.Int64
	latencyNs atomic.Int64
	// hist is the scheme's answer-latency histogram in the obs.Default
	// registry — looked up once when the counters are created, observed
	// per answered call.
	hist *obs.Histogram
}

// snapshot renders the counters for the wire.
func (c *schemeCounters) snapshot() schemeStats {
	st := schemeStats{
		Queries:       c.queries.Load(),
		Errors:        c.errors.Load(),
		QueriesFailed: c.failed.Load(),
		LatencyNs:     c.latencyNs.Load(),
	}
	if snap := c.hist.Snapshot(); snap.Count > 0 {
		st.P50Ns = snap.Quantile(0.50).Nanoseconds()
		st.P90Ns = snap.Quantile(0.90).Nanoseconds()
		st.P99Ns = snap.Quantile(0.99).Nanoseconds()
		st.P999Ns = snap.Quantile(0.999).Nanoseconds()
	}
	return st
}

// maxShards caps the client-supplied shard count: each shard costs a
// goroutine during registration and a snapshot file on disk, so an
// unbounded ?shards=10^9 is a resource-exhaustion vector.
const maxShards = 64

// Server serves a store.Registry over HTTP.
type Server struct {
	reg     *store.Registry
	catalog map[string]*core.Scheme
	mux     *http.ServeMux

	// defaultShards is applied to registrations that do not carry an
	// explicit ?shards parameter (0 or 1 = unsharded); defaultPartitioner
	// names the partitioner used when ?partitioner is absent.
	defaultShards      int
	defaultPartitioner string

	// stats maps a scheme name to its *schemeCounters; sync.Map keeps the
	// read-mostly hot path (existing scheme, atomic bumps) lock-free.
	stats sync.Map
	// maintenanceNs sums the wall time of successful PATCH maintenance
	// (the deltas-applied count itself lives on the registry, next to the
	// preprocess and snapshot-load counters, so library-side ApplyDelta
	// calls are counted too).
	maintenanceNs atomic.Int64
	// degradedAnswers counts verdicts served through a degraded-mode
	// fallback (breaker half-open or query budget nearly spent); surfaced
	// as degraded_answers in /v1/stats and as
	// pitract_degraded_answers_total in /metrics.
	degradedAnswers atomic.Int64

	// cache, when non-nil, memoizes ⟨dataset, version, query⟩ verdicts in
	// front of the answer paths (see SetAnswerCache).
	cache *cache.Cache
	// cachedViews memoizes the cache-fronted view per dataset id, so the
	// answer paths stop allocating a fresh wrapper per request (see
	// answerPath). Values are *cachedView; SetAnswerCache clears it.
	cachedViews sync.Map

	// env enforces the serving envelope: body/batch caps, admission
	// control, and request budgets (see Limits and SetLimits). Never nil.
	env *envelope

	// root is the handler the listener serves: the observability middleware
	// (request-ID assignment, optional request/slow-query logging) wrapped
	// around mux. Never nil.
	root http.Handler
	// startTime anchors the uptime_s stats field.
	startTime time.Time
	// logger, when non-nil, receives one structured line per request (and
	// slow-query warnings past slowQuery). Set before serving traffic.
	logger *slog.Logger
	// slowQuery is the threshold past which a request is logged at Warn;
	// 0 disables the slow-query log. Set before serving traffic.
	slowQuery time.Duration

	// httpSrv is created in New so Shutdown always has a target, even when
	// it races the start of Serve (http.Server.Shutdown before Serve makes
	// the later Serve return ErrServerClosed immediately).
	httpSrv *http.Server
}

// New returns a server over reg. catalog maps the scheme names clients may
// register with; nil selects Catalog().
func New(reg *store.Registry, catalog map[string]*core.Scheme) *Server {
	if catalog == nil {
		catalog = Catalog()
	}
	s := &Server{
		reg:       reg,
		catalog:   catalog,
		mux:       http.NewServeMux(),
		startTime: time.Now(),
	}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/datasets", s.handleDatasets)
	s.mux.HandleFunc("/v1/datasets/", s.handleDatasetByID)
	s.mux.HandleFunc("/v1/query", s.handleQuery)
	s.mux.HandleFunc("/v1/query/batch", s.handleQueryBatch)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	// /metrics renders the process-wide obs.Default registry; like the other
	// observability endpoints it is never metered by the envelope, so the
	// node stays scrapeable under saturation.
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.env = newEnvelope(Limits{})
	s.root = s.withObservability(s.mux)
	s.httpSrv = &http.Server{Handler: s.root}
	s.applyTimeouts()
	// The in-flight gauge reads the envelope at scrape time — zero hot-path
	// cost. The registry is process-wide, so the most recently constructed
	// Server owns the callback (one server per process in production).
	obs.Default.GaugeFunc("pitract_requests_in_flight",
		"Work requests currently admitted by the serving envelope.",
		func() int64 { return s.env.inFlight.Load() })
	// The artifact gauge sums the in-memory Π bytes over completed datasets
	// at scrape time — PrepBytes is a length read per dataset, so scrapes
	// stay cheap even with many registrations.
	obs.Default.GaugeFunc("pitract_artifact_bytes",
		"Total in-memory preprocessed artifact (Π) bytes across completed datasets.",
		func() int64 { return reg.ArtifactBytes() })
	return s
}

// Probe-stage histograms: reachability answer latency split by answerer
// family, so dashboards can compare the succinct label-intersection probes
// against the dense matrix probes side by side. Observed in record() — on
// the serving path, outside the prepared answerers, so the hot probe loop
// itself stays uninstrumented.
var (
	obsProbeDense = obs.Stage(obs.StageProbeDense)
	obsProbeLabel = obs.Stage(obs.StageProbeLabel)
)

// Graceful-degradation counters: verdicts served through a declared
// fallback instead of the primary answer path, and queries abandoned at
// the -query-budget-ms deadline. Both feed the breaker dashboards next to
// pitract_breaker_trips_total.
var (
	obsDegradedAnswers = obs.Default.Counter("pitract_degraded_answers_total",
		"Verdicts served through a dataset's degraded-mode fallback.")
	obsDeadlineExpired = obs.Default.Counter("pitract_deadline_expired_total",
		"Queries abandoned at the per-query deadline (HTTP 504).")
)

// SetLogger installs a structured logger: one Debug line per request plus
// Warn lines for requests past the slow-query threshold. nil (the default)
// disables request logging. Set it before serving traffic — the server
// face of `pitract serve -log-level/-log-format`.
func (s *Server) SetLogger(l *slog.Logger) { s.logger = l }

// SetSlowQueryThreshold sets the latency past which a request is logged at
// Warn through the logger installed with SetLogger; 0 (the default)
// disables the slow-query log. Set it before serving traffic — the server
// face of `pitract serve -slow-query-ms`.
func (s *Server) SetSlowQueryThreshold(d time.Duration) { s.slowQuery = d }

// SetLimits installs the serving envelope — body/batch caps, concurrency
// admission, request budgets, and the Retry-After advertisement — and
// sizes the http.Server timeouts to fit it. Set it before serving
// traffic; the zero Limits (the default) keeps the documented caps with
// no concurrency limit and no budget.
func (s *Server) SetLimits(l Limits) {
	s.env = newEnvelope(l)
	s.applyTimeouts()
}

// Limits returns the active serving envelope (defaults resolved).
func (s *Server) Limits() Limits { return s.env.limits }

// applyTimeouts sizes the http.Server timeouts to the envelope. The
// header read stays on a tight fuse and idle keep-alives are reaped, but
// the read/write timeouts — which bound body transfer and the whole
// handler — must fit the slowest legitimate request: a registration
// running right up to its budget. With no budget configured they fall
// back to a generous fixed window; set RegisterBudget to serve
// registrations slower than that.
func (s *Server) applyTimeouts() {
	const baseTimeout = 2 * time.Minute
	rw := baseTimeout
	if b := s.env.limits.RegisterBudget; b > 0 && b+30*time.Second > rw {
		rw = b + 30*time.Second
	}
	s.httpSrv.ReadHeaderTimeout = 10 * time.Second
	s.httpSrv.ReadTimeout = rw
	s.httpSrv.WriteTimeout = rw
	s.httpSrv.IdleTimeout = 2 * time.Minute
}

// Registry returns the registry the server answers from.
func (s *Server) Registry() *store.Registry { return s.reg }

// SetAnswerCache puts c in front of the single and batch answer paths: hot
// ⟨dataset, version, query⟩ verdicts are served from memory, cold keys run
// the underlying (prepared) answer once per thundering herd, and a PATCH
// invalidates by version bump (stale keys age out of the LRU). nil
// disables caching. Set it before serving traffic — the server face of the
// CLI's -cache-bytes flag. Cache counters appear in /v1/stats while
// enabled.
func (s *Server) SetAnswerCache(c *cache.Cache) {
	s.cache = c
	// Memoized views wrap the previous cache; drop them so answerPath
	// rebuilds against c.
	s.cachedViews.Range(func(k, _ interface{}) bool {
		s.cachedViews.Delete(k)
		return true
	})
}

// cachedView pairs a dataset with its memoized cache-fronted view; the ds
// field lets answerPath detect a re-registered dataset under the same id
// and rebuild rather than answer through a stale wrapper.
type cachedView struct {
	ds   store.Dataset
	view store.Dataset
}

// answerPath returns the dataset the answer handlers should answer
// through: the dataset itself, or its cache-fronted view. The view is
// memoized per dataset id — NewCachedDataset is cheap but per-request
// allocation on the hot answer path is pure garbage-collector load, and
// the wrapper is immutable (version-keying happens per call inside it).
func (s *Server) answerPath(ds store.Dataset) store.Dataset {
	if s.cache == nil {
		return ds
	}
	id := ds.DatasetID()
	if v, ok := s.cachedViews.Load(id); ok {
		if cv := v.(*cachedView); cv.ds == ds {
			return cv.view
		}
	}
	cv := &cachedView{ds: ds, view: store.NewCachedDataset(ds, s.cache)}
	s.cachedViews.Store(id, cv)
	return cv.view
}

// SetDefaultSharding sets the shard count and partitioner applied to
// registrations without explicit ?shards/?partitioner parameters — the
// server face of the CLI's -shards/-partitioner flags. shards <= 1 keeps
// the unsharded default; an empty partitioner selects "hash". The
// partitioner name is validated here so a typo fails at startup, not at
// the first registration.
func (s *Server) SetDefaultSharding(shards int, partitioner string) error {
	if shards > maxShards {
		return fmt.Errorf("server: default shards %d exceeds the cap %d", shards, maxShards)
	}
	if _, err := shard.PartitionerByName(partitioner); err != nil {
		return err
	}
	if shards < 0 {
		shards = 0
	}
	s.defaultShards = shards
	s.defaultPartitioner = partitioner
	return nil
}

// Handler returns the HTTP handler (for httptest and embedding), including
// the observability middleware.
func (s *Server) Handler() http.Handler { return s.root }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.root.ServeHTTP(w, r) }

// Serve accepts connections on l until Shutdown. It is the blocking core
// of ListenAndServe, split out so callers can listen on ":0" and learn the
// port first. Each Server serves one listener lifetime: after Shutdown,
// make a new Server rather than calling Serve again.
func (s *Server) Serve(l net.Listener) error {
	err := s.httpSrv.Serve(l)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// ListenAndServe serves on addr until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Shutdown gracefully stops a Serve/ListenAndServe in progress: in-flight
// requests finish (bounded by ctx), new connections are refused. Calling
// it before Serve starts is safe — the pending Serve then returns
// immediately.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.httpSrv.Shutdown(ctx)
}

// --- wire types ---------------------------------------------------------------

// RegisterRequest registers a dataset: raw data bytes plus the scheme that
// should preprocess and answer it.
type RegisterRequest struct {
	ID     string `json:"id"`
	Scheme string `json:"scheme"`
	Data   []byte `json:"data"`
}

// DatasetInfo describes one registered dataset.
type DatasetInfo struct {
	ID        string `json:"id"`
	Scheme    string `json:"scheme"`
	PrepBytes int    `json:"prep_bytes"`
	// Loaded is true when Π(D) came from a snapshot instead of a fresh
	// Preprocess call.
	Loaded bool `json:"loaded"`
	// Shards is the number of preprocessed stores backing the dataset
	// (1 = unsharded).
	Shards int `json:"shards"`
	// Version is the dataset's monotonic maintenance version: 0 as
	// registered, +1 per delta applied through PATCH. Snapshot reloads
	// restore it, so it never regresses across restarts.
	Version uint64 `json:"version"`
}

// PatchRequest applies a batch of deltas to a registered dataset:
// Π ← Π(D ⊕ ∆D₁ ⊕ … ⊕ ∆Dₖ), maintained in place through the scheme's
// incremental form instead of re-preprocessing. Each delta uses the
// scheme's delta encoding (schemes.KeysDelta for the sorted-key schemes,
// schemes.EdgeDelta for reachability). The batch is atomic: every delta
// commits — with a bumped version and a rewritten snapshot — or none do.
type PatchRequest struct {
	Deltas [][]byte `json:"deltas"`
}

// QueryRequest answers one query against a registered dataset.
type QueryRequest struct {
	Dataset string `json:"dataset"`
	Query   []byte `json:"query"`
}

// QueryResponse is one verdict. Version is the dataset maintenance version
// observed when the query was admitted; the answer reflects that version
// or a newer one (never an older or partially applied state), and versions
// reported to one client never regress.
type QueryResponse struct {
	Answer  bool   `json:"answer"`
	Version uint64 `json:"version"`
	// Degraded marks a verdict served through the dataset's declared
	// degraded-mode fallback (breaker half-open, or the query budget nearly
	// spent) instead of the primary answer path. Fallbacks are exact — the
	// verdict is the same — but the latency profile is the fallback's, and
	// operators may want to alert on a rising degraded rate. Absent (false)
	// on the primary path, so existing clients see unchanged bodies.
	Degraded bool `json:"degraded,omitempty"`
}

// BatchRequest answers many queries through the AnswerBatch worker pool.
type BatchRequest struct {
	Dataset string   `json:"dataset"`
	Queries [][]byte `json:"queries"`
	// Parallelism bounds the worker pool; <= 0 selects GOMAXPROCS, and the
	// server caps it at maxBatchParallelism.
	Parallelism int `json:"parallelism,omitempty"`
}

// BatchResponse carries the verdicts in query order, all answered against
// one consistent dataset version (see QueryResponse on version semantics).
type BatchResponse struct {
	Answers []bool `json:"answers"`
	Version uint64 `json:"version"`
	// Degraded marks a batch in which at least one verdict was served
	// through the degraded-mode fallback (see QueryResponse.Degraded).
	Degraded bool `json:"degraded,omitempty"`
}

// CacheStats reports the answer cache's counters: hits (served from
// memory), misses (ran the underlying answer), coalesced (waited on
// another caller's in-flight answer for the same key), evictions (dropped
// by the byte budget, which is also how stale-version entries leave), and
// current residency against the configured budget.
type CacheStats struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Coalesced   int64 `json:"coalesced"`
	Evictions   int64 `json:"evictions"`
	Entries     int64 `json:"entries"`
	Bytes       int64 `json:"bytes"`
	BudgetBytes int64 `json:"budget_bytes"`
}

// BuildInfo identifies the running binary: the toolchain version plus the
// module version and VCS revision when the binary was built from a
// version-controlled checkout (empty otherwise).
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Version   string `json:"version,omitempty"`
	Revision  string `json:"revision,omitempty"`
	Dirty     bool   `json:"dirty,omitempty"`
}

var (
	buildInfoOnce sync.Once
	buildInfoVal  BuildInfo
)

// buildInfo reads the binary's build metadata once per process.
func buildInfo() BuildInfo {
	buildInfoOnce.Do(func() {
		buildInfoVal = BuildInfo{GoVersion: runtime.Version()}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if bi.GoVersion != "" {
			buildInfoVal.GoVersion = bi.GoVersion
		}
		if v := bi.Main.Version; v != "" && v != "(devel)" {
			buildInfoVal.Version = v
		}
		for _, set := range bi.Settings {
			switch set.Key {
			case "vcs.revision":
				buildInfoVal.Revision = set.Value
			case "vcs.modified":
				buildInfoVal.Dirty = set.Value == "true"
			}
		}
	})
	return buildInfoVal
}

// stageStats is the wire form of one serve-path stage's latency histogram
// in the /v1/stats "stages" block.
type stageStats struct {
	Count  int64 `json:"count"`
	MeanNs int64 `json:"mean_ns"`
	P50Ns  int64 `json:"p50_ns"`
	P90Ns  int64 `json:"p90_ns"`
	P99Ns  int64 `json:"p99_ns"`
	P999Ns int64 `json:"p999_ns"`
}

// stageStatsSnapshot renders every stage histogram with observations. The
// registry is process-wide, so the counts aggregate across every Server in
// the process (one server per process in production).
func stageStatsSnapshot() map[string]stageStats {
	series := obs.Default.HistogramSeries(obs.StageFamily)
	var m map[string]stageStats
	for _, se := range series {
		var name string
		for _, l := range se.Labels {
			if l.Key == "stage" {
				name = l.Value
			}
		}
		if name == "" || se.Snapshot.Count == 0 {
			continue
		}
		if m == nil {
			m = map[string]stageStats{}
		}
		m[name] = stageStats{
			Count:  se.Snapshot.Count,
			MeanNs: se.Snapshot.Mean().Nanoseconds(),
			P50Ns:  se.Snapshot.Quantile(0.50).Nanoseconds(),
			P90Ns:  se.Snapshot.Quantile(0.90).Nanoseconds(),
			P99Ns:  se.Snapshot.Quantile(0.99).Nanoseconds(),
			P999Ns: se.Snapshot.Quantile(0.999).Nanoseconds(),
		}
	}
	return m
}

// StatsResponse reports serving counters since process start.
type StatsResponse struct {
	Datasets        int   `json:"datasets"`
	PreprocessCalls int64 `json:"preprocess_calls"`
	SnapshotLoads   int64 `json:"snapshot_loads"`
	Queries         int64 `json:"queries"`
	// UptimeS is the seconds since the Server was constructed; Build
	// identifies the binary serving the stats.
	UptimeS float64   `json:"uptime_s"`
	Build   BuildInfo `json:"build"`
	// DeltasApplied counts deltas committed through PATCH; MaintenanceNs
	// sums the wall time spent applying them (incremental maintenance plus
	// snapshot rewriting).
	DeltasApplied int64 `json:"deltas_applied"`
	// DeltasDeleted counts the applied deltas that were delete-kind
	// (tombstones and edge retractions); LogReplays counts delta-log
	// records replayed at registration — nonzero after a crash recovery,
	// zero on a clean checkpointed start.
	DeltasDeleted int64                  `json:"deltas_deleted"`
	LogReplays    int64                  `json:"log_replays"`
	MaintenanceNs int64                  `json:"maintenance_ns"`
	PerScheme     map[string]schemeStats `json:"per_scheme"`
	// Envelope reports the serving envelope: the in-flight gauge, the
	// active limits, and every rejection the envelope has issued (429
	// backpressure, 413 oversized bodies and batches, 503 budget
	// exhaustions). See Limits and Server.SetLimits.
	Envelope EnvelopeStats `json:"envelope"`
	// Cache carries the answer cache counters; absent when no cache is
	// configured (see Server.SetAnswerCache and `pitract serve -cache-bytes`).
	Cache *CacheStats `json:"cache,omitempty"`
	// Stages reports per-stage latency percentiles from the serve-path
	// histograms (the JSON face of the /metrics stage family); absent until
	// a stage has recorded an observation (e.g. while metrics are disabled).
	Stages map[string]stageStats `json:"stages,omitempty"`
	// ArtifactBytes sums the in-memory preprocessed artifact bytes (Π) over
	// completed datasets; SnapshotBytes sums their encoded snapshot sizes —
	// the on-disk footprint a full checkpoint would write, reported whether
	// or not the registry persists. SnapshotCompressionRatio is
	// SnapshotBytes/ArtifactBytes (0 with no artifacts): below 1.0 the v3
	// snapshot codecs and succinct schemes are shrinking the durable form
	// below the served one.
	ArtifactBytes            int64   `json:"artifact_bytes"`
	SnapshotBytes            int64   `json:"snapshot_bytes"`
	SnapshotCompressionRatio float64 `json:"snapshot_compression_ratio"`
	// DegradedAnswers counts verdicts served through a degraded-mode
	// fallback; Quarantines counts artifacts (snapshots or delta logs)
	// renamed aside after failing integrity checks. Healthy steady state
	// is both zero.
	DegradedAnswers int64 `json:"degraded_answers"`
	Quarantines     int64 `json:"quarantines"`
}

type errorResponse struct {
	Error string `json:"error"`
	// RequestID echoes the client's X-Request-ID, so an error body can be
	// matched to the client's own trace. Only set when the client supplied
	// one — generated ids travel in the response header alone.
	RequestID string `json:"request_id,omitempty"`
}

// --- handlers -----------------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, r *http.Request, status int, format string, args ...interface{}) {
	resp := errorResponse{Error: fmt.Sprintf(format, args...)}
	if id, fromClient := clientRequestID(r); fromClient {
		resp.RequestID = id
	}
	writeJSON(w, status, resp)
}

// decodeBody decodes a JSON request body under the envelope's byte cap.
// An oversized body is a 413 naming the limit — it is a well-formed
// request the server refuses by policy, not a malformed one — and every
// other decode failure stays a 400.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.env.limits.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.env.noteBody413(r)
			writeError(w, r, http.StatusRequestEntityTooLarge,
				"request body exceeds the %d-byte limit", mbe.Limit)
			return false
		}
		writeError(w, r, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// handleHealthz reports liveness plus per-dataset health. The default
// (verbose) body carries a "health" map of dataset id → breaker state
// (healthy/degraded/open/quarantined) and an overall status: "ok" when
// every dataset is healthy, "degraded" when any is degraded or
// quarantined (still 200 — the node is serving, possibly via fallbacks),
// and "unhealthy" with a 503 when any breaker is open, so load balancers
// drain a node whose datasets are refusing traffic. ?verbose=0 keeps the
// original two-field shape, always 200 — the liveness probe contract.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, http.StatusMethodNotAllowed, "use GET")
		return
	}
	if r.URL.Query().Get("verbose") == "0" {
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"status":   "ok",
			"datasets": s.reg.Len(),
		})
		return
	}
	states := s.reg.HealthStates()
	health := make(map[string]string, len(states))
	status, code := "ok", http.StatusOK
	for id, st := range states {
		health[id] = st.String()
		switch st {
		case store.HealthOpen:
			status, code = "unhealthy", http.StatusServiceUnavailable
		case store.HealthDegraded, store.HealthQuarantined:
			if status == "ok" {
				status = "degraded"
			}
		}
	}
	writeJSON(w, code, map[string]interface{}{
		"status":   status,
		"datasets": s.reg.Len(),
		"health":   health,
	})
}

// datasetInfo renders one dataset for the wire.
func datasetInfo(ds store.Dataset) DatasetInfo {
	return DatasetInfo{
		ID:        ds.DatasetID(),
		Scheme:    ds.SchemeName(),
		PrepBytes: ds.PrepBytes(),
		Loaded:    ds.WasLoaded(),
		Shards:    ds.ShardCount(),
		Version:   ds.Version(),
	}
}

// handleDatasetByID serves the per-dataset subresource /v1/datasets/{id}:
// GET describes it, PATCH maintains it in place under a batch of deltas.
// The id segment is unescaped exactly once from the ESCAPED path —
// r.URL.Path is already percent-decoded, so unescaping it again would
// mis-address ids containing '%' (and 404 ids like "50%"). Ids with '/'
// are addressable as %2F.
func (s *Server) handleDatasetByID(w http.ResponseWriter, r *http.Request) {
	rawID := strings.TrimPrefix(r.URL.EscapedPath(), "/v1/datasets/")
	id, err := url.PathUnescape(rawID)
	if err != nil || id == "" || strings.Contains(rawID, "/") {
		writeError(w, r, http.StatusNotFound, "bad dataset path %q", r.URL.Path)
		return
	}
	switch r.Method {
	case http.MethodGet:
		ds, ok := s.lookup(w, r, id)
		if !ok {
			return
		}
		writeJSON(w, http.StatusOK, datasetInfo(ds))
	case http.MethodPatch:
		var req PatchRequest
		if !s.decodeBody(w, r, &req) {
			return
		}
		if len(req.Deltas) == 0 {
			writeError(w, r, http.StatusBadRequest, "empty delta batch")
			return
		}
		release, reason, admitted := s.env.admit(id)
		if !admitted {
			s.env.reject429(w, r, reason)
			return
		}
		defer release()
		ds, ok := s.lookup(w, r, id)
		if !ok {
			return
		}
		ctx, cancel := s.workContext(r)
		defer cancel()
		start := time.Now()
		if _, err := s.reg.ApplyDeltaContext(ctx, id, req.Deltas); err != nil {
			var nf *store.NotFoundError
			var pe *store.PersistError
			var be *store.BudgetError
			switch {
			case errors.As(err, &nf):
				writeError(w, r, http.StatusNotFound, "%v", err)
			case errors.As(err, &be):
				// The batch outran the request budget; by the maintenance
				// atomicity contract nothing was applied. Retryable with a
				// smaller batch or a larger -register-budget.
				s.env.noteBudget(r)
				writeError(w, r, http.StatusServiceUnavailable, "%v", err)
			case errors.As(err, &pe):
				// The deltas were applicable; writing the durable artifact
				// failed (disk full, I/O error). A server fault, not a
				// conflicting request — nothing was committed.
				writeError(w, r, http.StatusInternalServerError, "%v", err)
			default:
				// Everything else — a scheme with no incremental form, a
				// sharded form without delta routing, a hostile delta
				// payload — is a conflict with the dataset's current state;
				// the dataset, its registry entry, and its snapshot are
				// untouched.
				writeError(w, r, http.StatusConflict, "%v", err)
			}
			return
		}
		s.recordMaintenance(time.Since(start))
		writeJSON(w, http.StatusOK, datasetInfo(ds))
	default:
		writeError(w, r, http.StatusMethodNotAllowed, "use GET or PATCH")
	}
}

// shardingParams resolves the ?shards / ?partitioner query parameters
// against the server defaults. explicit reports whether the client named
// a shard count itself (a defaulted count may quietly fall back to
// unsharded for schemes without a sharded form; an explicit one may not).
// ok=false means the response was already written.
func (s *Server) shardingParams(w http.ResponseWriter, r *http.Request) (shards int, p shard.Partitioner, explicit, ok bool) {
	shards = s.defaultShards
	if raw := r.URL.Query().Get("shards"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			writeError(w, r, http.StatusBadRequest, "bad shards parameter %q: want a positive integer", raw)
			return 0, nil, false, false
		}
		if n > maxShards {
			writeError(w, r, http.StatusBadRequest, "shards %d exceeds the cap %d", n, maxShards)
			return 0, nil, false, false
		}
		shards, explicit = n, true
	}
	name := r.URL.Query().Get("partitioner")
	if name == "" {
		name = s.defaultPartitioner
	}
	p, err := shard.PartitionerByName(name)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "%v", err)
		return 0, nil, false, false
	}
	return shards, p, explicit, true
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req RegisterRequest
		if !s.decodeBody(w, r, &req) {
			return
		}
		if req.ID == "" {
			writeError(w, r, http.StatusBadRequest, "missing dataset id")
			return
		}
		scheme, ok := s.catalog[req.Scheme]
		if !ok {
			writeError(w, r, http.StatusBadRequest, "unknown scheme %q (have %v)", req.Scheme, s.schemeNames())
			return
		}
		shards, partitioner, explicit, ok := s.shardingParams(w, r)
		if !ok {
			return
		}
		if shards > 1 && shard.ForScheme(req.Scheme) == nil {
			// An explicit ?shards=N for an unshardable scheme is a client
			// error; a server-wide -shards default must not make these
			// schemes unregistrable, so it falls back to unsharded.
			if explicit {
				writeError(w, r, http.StatusBadRequest, "scheme %q has no sharded form (shardable: %v)",
					req.Scheme, shard.ShardableSchemes())
				return
			}
			shards = 1
		}
		release, reason, admitted := s.env.admit(req.ID)
		if !admitted {
			s.env.reject429(w, r, reason)
			return
		}
		defer release()
		ctx, cancel := s.workContext(r)
		defer cancel()
		var ds store.Dataset
		var err error
		if shards > 1 {
			ds, err = shard.RegisterShardedContext(ctx, s.reg, req.ID, scheme, partitioner, shards, req.Data)
		} else {
			ds, err = s.reg.RegisterContext(ctx, req.ID, scheme, req.Data)
		}
		if err != nil {
			var be *store.BudgetError
			if errors.As(err, &be) {
				// The build outran the request budget and was abandoned: no
				// catalog entry, no snapshot handed out. Retryable with a
				// larger -register-budget.
				s.env.noteBudget(r)
				writeError(w, r, http.StatusServiceUnavailable, "%v", err)
				return
			}
			writeError(w, r, http.StatusConflict, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, datasetInfo(ds))
	case http.MethodGet:
		infos := []DatasetInfo{}
		for _, id := range s.reg.IDs() {
			if ds, ok := s.reg.GetDataset(id); ok {
				infos = append(infos, datasetInfo(ds))
			}
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{"datasets": infos})
	default:
		writeError(w, r, http.StatusMethodNotAllowed, "use GET or POST")
	}
}

// workContext derives the context a registration or PATCH runs under:
// the request context (so a disconnected client cancels the work it
// asked for) bounded by RegisterBudget when one is configured.
func (s *Server) workContext(r *http.Request) (context.Context, context.CancelFunc) {
	if b := s.env.limits.RegisterBudget; b > 0 {
		return context.WithTimeout(r.Context(), b)
	}
	return context.WithCancel(r.Context())
}

// queryContext derives the context one answer request runs under: the
// request context (a disconnected client abandons its own query) bounded
// by QueryBudget when one is configured. Without a budget it returns a
// non-cancellable context, so AnswerWithin degenerates to the plain
// answer call and the hot path stays guard-free.
func (s *Server) queryContext(r *http.Request) (context.Context, context.CancelFunc) {
	if b := s.env.limits.QueryBudget; b > 0 {
		return context.WithTimeout(r.Context(), b)
	}
	return context.Background(), func() {}
}

// rejectBreaker writes the open-breaker refusal: 503 Service Unavailable
// with a jittered Retry-After drawn from the breaker's current backoff
// (falling back to the envelope's advertised delay), so synchronized
// clients don't re-trip the breaker in one thundering retry wave.
func (s *Server) rejectBreaker(w http.ResponseWriter, r *http.Request, dataset string, retryAfter time.Duration) {
	s.env.noteBreaker503(r)
	if retryAfter <= 0 {
		retryAfter = s.env.limits.RetryAfter
	}
	secs := jitterSeconds(retryAfter)
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, r, http.StatusServiceUnavailable,
		"dataset %q health breaker open; retry after %ds", dataset, secs)
}

// answerFailure classifies an answer-path error for the wire and tells
// the dataset's breaker what it proved. A deadline overrun is a 504 and a
// breaker failure (a dataset too slow to answer inside its budget is
// unhealthy); a Prepare failure is a 500 and a breaker failure (the
// dataset cannot answer at all); everything else — malformed queries,
// out-of-range ids — stays the client's 422 and counts as a breaker
// success, because a request that got as far as query classification
// proved the serve path end to end.
func (s *Server) answerFailure(w http.ResponseWriter, r *http.Request, br *store.Breaker, probe bool, err error) {
	var de *store.DeadlineError
	if errors.As(err, &de) {
		br.OnFailure(probe)
		s.env.noteDeadline504(r)
		obsDeadlineExpired.Inc()
		writeError(w, r, http.StatusGatewayTimeout, "%v", err)
		return
	}
	var pe *store.PrepareError
	if errors.As(err, &pe) {
		br.OnFailure(probe)
		writeError(w, r, http.StatusInternalServerError, "%v", err)
		return
	}
	br.OnSuccess(probe)
	writeError(w, r, http.StatusUnprocessableEntity, "%v", err)
}

// lookup resolves a dataset — plain or sharded — for the answer paths.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request, dataset string) (store.Dataset, bool) {
	if dataset == "" {
		writeError(w, r, http.StatusBadRequest, "missing dataset id")
		return nil, false
	}
	ds, ok := s.reg.GetDataset(dataset)
	if !ok {
		writeError(w, r, http.StatusNotFound, "dataset %q not registered", dataset)
		return nil, false
	}
	return ds, true
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, r, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req QueryRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	release, reason, admitted := s.env.admit(req.Dataset)
	if !admitted {
		s.env.reject429(w, r, reason)
		return
	}
	defer release()
	ds, ok := s.lookup(w, r, req.Dataset)
	if !ok {
		return
	}
	// The breaker is consulted only after a successful lookup, so hostile
	// unknown ids can never grow the breaker map.
	br := s.reg.Breaker(req.Dataset)
	dec := br.Allow()
	if !dec.Admit {
		s.rejectBreaker(w, r, req.Dataset, dec.RetryAfter)
		return
	}
	path := s.answerPath(ds)
	if dec.Probe {
		// Half-open probe: retry a previously failed Prepare first, so a
		// healed filesystem (or a transient decode fault) closes the
		// breaker. The retry's outcome surfaces through the answer below.
		if pr, ok := path.(store.PrepareRetrier); ok {
			pr.RetryPrepare()
		}
	}
	// The version is read before the answer, so the verdict reflects this
	// version or newer — reported versions are monotonic and never label an
	// answer with a state it has not seen. The cache (when enabled) keys on
	// its own admission-time version read, which obeys the same bound.
	version := ds.Version()
	start := time.Now()
	var ans bool
	var err error
	degraded := false
	if dd, ok := path.(store.DegradedDataset); dec.Degrade && ok && dd.CanDegrade() {
		ans, err = dd.AnswerDegraded(req.Query)
		degraded = err == nil
	} else if dec.Degrade && !dec.ExactFallback {
		// A probe is already in flight and this dataset declares no
		// fallback: shedding is the only way to keep the half-open window
		// single-probe.
		s.rejectBreaker(w, r, req.Dataset, dec.RetryAfter)
		return
	} else {
		ctx, cancel := s.queryContext(r)
		defer cancel()
		ans, err = store.AnswerWithin(ctx, path, req.Query)
	}
	served, failed := 1, 0
	if err != nil {
		served, failed = 0, 1 // match the batch path: failed queries count as failed, not served
	}
	s.record(ds.SchemeName(), served, failed, time.Since(start), err)
	if err != nil {
		s.answerFailure(w, r, br, dec.Probe, err)
		return
	}
	br.OnSuccess(dec.Probe)
	if degraded {
		s.degradedAnswers.Add(1)
		obsDegradedAnswers.Inc()
	}
	writeJSON(w, http.StatusOK, QueryResponse{Answer: ans, Version: version, Degraded: degraded})
}

func (s *Server) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, r, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req BatchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if max := s.env.limits.MaxBatchQueries; len(req.Queries) > max {
		// Same policy split as the body cap: a well-formed batch over the
		// work limit is a 413 naming the limit, not a 400.
		s.env.noteBatch413(r)
		writeError(w, r, http.StatusRequestEntityTooLarge,
			"batch of %d queries exceeds the %d-query limit", len(req.Queries), max)
		return
	}
	release, reason, admitted := s.env.admit(req.Dataset)
	if !admitted {
		s.env.reject429(w, r, reason)
		return
	}
	defer release()
	ds, ok := s.lookup(w, r, req.Dataset)
	if !ok {
		return
	}
	br := s.reg.Breaker(req.Dataset) // after lookup: see handleQuery
	dec := br.Allow()
	if !dec.Admit {
		s.rejectBreaker(w, r, req.Dataset, dec.RetryAfter)
		return
	}
	path := s.answerPath(ds)
	if dec.Probe {
		if pr, ok := path.(store.PrepareRetrier); ok {
			pr.RetryPrepare() // see handleQuery
		}
	}
	parallelism := req.Parallelism
	if parallelism > maxBatchParallelism {
		parallelism = maxBatchParallelism
	}
	version := ds.Version() // before the batch: see handleQuery
	start := time.Now()
	var answers []bool
	var err error
	degraded := false
	if dd, ok := path.(store.DegradedDataset); dec.Degrade && ok && dd.CanDegrade() {
		answers, err = dd.AnswerBatchDegraded(req.Queries, parallelism)
		degraded = err == nil && len(req.Queries) > 0
	} else if dec.Degrade && !dec.ExactFallback {
		s.rejectBreaker(w, r, req.Dataset, dec.RetryAfter)
		return
	} else {
		ctx, cancel := s.queryContext(r)
		defer cancel()
		var ndeg int
		answers, ndeg, err = store.AnswerBatchWithin(ctx, path, req.Queries, parallelism)
		// A batch that switched to the fallback mid-flight (budget nearly
		// spent) is degraded as a whole — clients see one flag, not a
		// per-verdict split, because every verdict is exact either way.
		degraded = err == nil && ndeg > 0
	}
	// Count only queries actually answered: AnswerBatch fails fast and
	// returns no answers on error, so a failed batch must not inflate the
	// served-query counter — the whole batch counts as failed instead.
	failed := 0
	if err != nil {
		failed = len(req.Queries)
	}
	s.record(ds.SchemeName(), len(answers), failed, time.Since(start), err)
	if err != nil {
		s.answerFailure(w, r, br, dec.Probe, err)
		return
	}
	br.OnSuccess(dec.Probe)
	if degraded {
		s.degradedAnswers.Add(1)
		obsDegradedAnswers.Inc()
	}
	writeJSON(w, http.StatusOK, BatchResponse{Answers: answers, Version: version, Degraded: degraded})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, http.StatusMethodNotAllowed, "use GET")
		return
	}
	resp := StatsResponse{
		Datasets:        s.reg.Len(),
		PreprocessCalls: s.reg.PreprocessCount(),
		SnapshotLoads:   s.reg.LoadCount(),
		MaintenanceNs:   s.maintenanceNs.Load(),
		UptimeS:         time.Since(s.startTime).Seconds(),
		Build:           buildInfo(),
		PerScheme:       map[string]schemeStats{},
		Envelope:        s.env.stats(),
		Stages:          stageStatsSnapshot(),
	}
	s.stats.Range(func(name, v interface{}) bool {
		st := v.(*schemeCounters).snapshot()
		resp.PerScheme[name.(string)] = st
		resp.Queries += st.Queries
		return true
	})
	resp.DeltasApplied = s.reg.DeltaCount()
	resp.DeltasDeleted = s.reg.DeleteCount()
	resp.LogReplays = s.reg.ReplayCount()
	resp.DegradedAnswers = s.degradedAnswers.Load()
	resp.Quarantines = s.reg.QuarantineCount()
	resp.ArtifactBytes, resp.SnapshotBytes = s.reg.ArtifactStats()
	if resp.ArtifactBytes > 0 {
		resp.SnapshotCompressionRatio = float64(resp.SnapshotBytes) / float64(resp.ArtifactBytes)
	}
	if s.cache != nil {
		cs := s.cache.Stats()
		resp.Cache = &CacheStats{
			Hits: cs.Hits, Misses: cs.Misses, Coalesced: cs.Coalesced,
			Evictions: cs.Evictions, Entries: cs.Entries, Bytes: cs.Bytes,
			BudgetBytes: cs.BudgetBytes,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// recordMaintenance folds one successful PATCH into the latency counter.
func (s *Server) recordMaintenance(elapsed time.Duration) {
	s.maintenanceNs.Add(elapsed.Nanoseconds())
}

// record folds one answer-path call into the per-scheme counters — a few
// atomic adds, so high-QPS serving never bottlenecks on bookkeeping. The
// histogram observation is per call (one batch = one observation), matching
// the latency_ns accumulator it sits next to.
func (s *Server) record(scheme string, served, failed int, elapsed time.Duration, err error) {
	v, ok := s.stats.Load(scheme)
	if !ok {
		v, _ = s.stats.LoadOrStore(scheme, &schemeCounters{hist: obs.AnswerHistogram(scheme)})
	}
	c := v.(*schemeCounters)
	c.queries.Add(int64(served))
	c.latencyNs.Add(elapsed.Nanoseconds())
	c.hist.Observe(elapsed)
	switch scheme {
	case "reachability/closure-matrix":
		obsProbeDense.Observe(elapsed)
	case "reachability/labels":
		obsProbeLabel.Observe(elapsed)
	}
	if failed > 0 {
		c.failed.Add(int64(failed))
	}
	if err != nil {
		c.errors.Add(1)
	}
}

func (s *Server) schemeNames() []string {
	names := make([]string, 0, len(s.catalog))
	for n := range s.catalog {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
