package server

// The rejection-taxonomy suite for the serving envelope: 413 for
// oversized bodies and batches (naming the limit), 429 + Retry-After
// under saturated concurrency (global and per-dataset), 503 for budget
// exhaustion with no catalog side effects, and the envelope stats block
// that accounts for every one of them. Plus the answer-path memoization
// pin: the cache-fronted view is built once per dataset, not per request.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pitract/internal/cache"
	"pitract/internal/core"
	"pitract/internal/schemes"
	"pitract/internal/store"
)

// envStats fetches the /v1/stats envelope block.
func envStats(t *testing.T, client *http.Client, base string) EnvelopeStats {
	t.Helper()
	var resp StatsResponse
	if code := getJSON(t, client, base+"/v1/stats", &resp); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	return resp.Envelope
}

// TestEnvelopeOversizedBodies pins the 413 taxonomy: a body over the
// configured byte cap is refused on every decode path — register, query,
// and PATCH — with the limit named in the error, no catalog side
// effects, and the rejection counted.
func TestEnvelopeOversizedBodies(t *testing.T) {
	srv := New(store.NewRegistry(""), nil)
	const bodyCap = 1 << 10
	srv.SetLimits(Limits{MaxBodyBytes: bodyCap})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	big := make([]byte, 2*bodyCap)
	for _, tc := range []struct {
		name   string
		method string
		url    string
		body   interface{}
	}{
		{"register", http.MethodPost, "/v1/datasets", RegisterRequest{ID: "big", Scheme: "point-selection/sorted-keys", Data: big}},
		{"query", http.MethodPost, "/v1/query", QueryRequest{Dataset: "big", Query: big}},
		{"patch", http.MethodPatch, "/v1/datasets/big", PatchRequest{Deltas: [][]byte{big}}},
	} {
		payload, err := json.Marshal(tc.body)
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(tc.method, ts.URL+tc.url, bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var e errorResponse
		json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s: oversized body got status %d (%s), want 413", tc.name, resp.StatusCode, e.Error)
		}
		if !strings.Contains(e.Error, fmt.Sprintf("%d-byte limit", bodyCap)) {
			t.Fatalf("%s: 413 error %q does not name the %d-byte limit", tc.name, e.Error, bodyCap)
		}
	}
	if n := srv.Registry().Len(); n != 0 {
		t.Fatalf("oversized registration left %d catalog entries", n)
	}
	if st := envStats(t, client, ts.URL); st.RejectedBody413 != 3 {
		t.Fatalf("rejected_body_413 = %d, want 3", st.RejectedBody413)
	}

	// A body under the cap still registers — the limit refuses size, not
	// registration.
	var info DatasetInfo
	if code := postJSON(t, client, ts.URL+"/v1/datasets", RegisterRequest{
		ID: "small", Scheme: "point-selection/sorted-keys", Data: schemes.RelationFromKeys([]int64{2, 4}),
	}, &info); code != http.StatusOK {
		t.Fatalf("small registration under the cap got status %d", code)
	}
}

// TestEnvelopeBatchCap pins the batch-size bound: a batch over
// MaxBatchQueries is a 413 naming both sizes, one at the limit passes,
// and the rejection is counted separately from body-size 413s.
func TestEnvelopeBatchCap(t *testing.T) {
	srv := New(store.NewRegistry(""), nil)
	srv.SetLimits(Limits{MaxBatchQueries: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	if code := postJSON(t, client, ts.URL+"/v1/datasets", RegisterRequest{
		ID: "d", Scheme: "point-selection/sorted-keys", Data: schemes.RelationFromKeys([]int64{2, 4, 6}),
	}, nil); code != http.StatusOK {
		t.Fatalf("register status %d", code)
	}

	mkBatch := func(n int) BatchRequest {
		qs := make([][]byte, n)
		for i := range qs {
			qs[i] = schemes.PointQuery(int64(2 * i))
		}
		return BatchRequest{Dataset: "d", Queries: qs}
	}

	var e errorResponse
	if code := postJSON(t, client, ts.URL+"/v1/query/batch", mkBatch(5), &e); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch got status %d, want 413", code)
	}
	if !strings.Contains(e.Error, "batch of 5 queries exceeds the 4-query limit") {
		t.Fatalf("413 error %q does not name the batch sizes", e.Error)
	}
	var ok BatchResponse
	if code := postJSON(t, client, ts.URL+"/v1/query/batch", mkBatch(4), &ok); code != http.StatusOK {
		t.Fatalf("at-limit batch got status %d, want 200", code)
	}
	if len(ok.Answers) != 4 {
		t.Fatalf("at-limit batch answered %d queries, want 4", len(ok.Answers))
	}
	st := envStats(t, client, ts.URL)
	if st.RejectedBatch413 != 1 || st.RejectedBody413 != 0 {
		t.Fatalf("rejected_batch_413 = %d, rejected_body_413 = %d, want 1 and 0",
			st.RejectedBatch413, st.RejectedBody413)
	}
}

// blockingCatalog returns a catalog with one scheme whose Answer parks on
// gate for queries equal to "block" (other queries answer immediately),
// so tests can hold handler slots open deterministically.
func blockingCatalog(gate <-chan struct{}, entered chan<- struct{}) map[string]*core.Scheme {
	return map[string]*core.Scheme{
		"test/blocking": {
			SchemeName: "test/blocking",
			Preprocess: func(d []byte) ([]byte, error) { return d, nil },
			Answer: func(pd, q []byte) (bool, error) {
				if string(q) == "block" {
					entered <- struct{}{}
					<-gate
				}
				return true, nil
			},
		},
	}
}

// TestEnvelopeGlobalBackpressure pins the 429 path: with MaxInFlight
// saturated by parked requests, the next request is refused immediately
// with Retry-After advertising the configured delay, and the parked
// requests still complete once unblocked.
func TestEnvelopeGlobalBackpressure(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 4)
	srv := New(store.NewRegistry(""), blockingCatalog(gate, entered))
	srv.SetLimits(Limits{MaxInFlight: 2, RetryAfter: 3 * time.Second})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	if code := postJSON(t, client, ts.URL+"/v1/datasets", RegisterRequest{
		ID: "d", Scheme: "test/blocking", Data: []byte{1},
	}, nil); code != http.StatusOK {
		t.Fatalf("register status %d", code)
	}

	// Park two queries inside the handlers — the envelope is now full.
	var wg sync.WaitGroup
	codes := make(chan int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var qr QueryResponse
			codes <- postJSON(t, client, ts.URL+"/v1/query",
				QueryRequest{Dataset: "d", Query: []byte("block")}, &qr)
		}()
	}
	<-entered
	<-entered

	// The third request must be refused, not queued.
	body, _ := json.Marshal(QueryRequest{Dataset: "d", Query: []byte("go")})
	resp, err := client.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var e errorResponse
	json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated request got status %d (%s), want 429", resp.StatusCode, e.Error)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want %q", got, "3")
	}
	if !strings.Contains(e.Error, "server at capacity (2 in flight)") {
		t.Fatalf("429 error %q does not state the capacity", e.Error)
	}

	// Stats stay reachable under saturation and see the full envelope.
	st := envStats(t, client, ts.URL)
	if st.InFlight != 2 || st.Rejected429 != 1 || st.MaxInFlight != 2 {
		t.Fatalf("under saturation: in_flight=%d rejected_429=%d max_in_flight=%d, want 2, 1, 2",
			st.InFlight, st.Rejected429, st.MaxInFlight)
	}

	close(gate)
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Fatalf("parked query finished with status %d, want 200", code)
		}
	}
	if st := envStats(t, client, ts.URL); st.InFlight != 0 {
		t.Fatalf("in_flight = %d after drain, want 0", st.InFlight)
	}
}

// TestEnvelopePerDatasetBackpressure pins slot isolation: one dataset at
// its per-dataset cap is refused with a 429 naming that dataset while a
// second dataset keeps answering — a hot dataset cannot starve the
// catalog.
func TestEnvelopePerDatasetBackpressure(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 4)
	srv := New(store.NewRegistry(""), blockingCatalog(gate, entered))
	srv.SetLimits(Limits{MaxInFlightPerDataset: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	for _, id := range []string{"hot", "cold"} {
		if code := postJSON(t, client, ts.URL+"/v1/datasets", RegisterRequest{
			ID: id, Scheme: "test/blocking", Data: []byte{1},
		}, nil); code != http.StatusOK {
			t.Fatalf("register %s status %d", id, code)
		}
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postJSON(t, client, ts.URL+"/v1/query",
			QueryRequest{Dataset: "hot", Query: []byte("block")}, nil)
	}()
	<-entered

	body, _ := json.Marshal(QueryRequest{Dataset: "hot", Query: []byte("go")})
	resp, err := client.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var e errorResponse
	json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("hot dataset at capacity got status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("per-dataset 429 missing Retry-After")
	}
	if !strings.Contains(e.Error, `dataset "hot" at capacity (1 in flight)`) {
		t.Fatalf("429 error %q does not name the saturated dataset", e.Error)
	}

	// The other dataset is untouched by hot's saturation.
	var qr QueryResponse
	if code := postJSON(t, client, ts.URL+"/v1/query",
		QueryRequest{Dataset: "cold", Query: []byte("go")}, &qr); code != http.StatusOK {
		t.Fatalf("cold dataset starved: status %d, want 200", code)
	}

	close(gate)
	wg.Wait()
}

// TestEnvelopeRegisterBudget pins the 503 path end to end: a
// registration that outruns RegisterBudget returns 503 with the budget
// error, is counted, and leaves no catalog entry once the abandoned
// build drains — the id then registers cleanly.
func TestEnvelopeRegisterBudget(t *testing.T) {
	gate := make(chan struct{})
	catalog := map[string]*core.Scheme{
		"test/slow": {
			SchemeName: "test/slow",
			Preprocess: func(d []byte) ([]byte, error) {
				<-gate
				return d, nil
			},
			Answer: func(pd, q []byte) (bool, error) { return true, nil },
		},
	}
	srv := New(store.NewRegistry(""), catalog)
	srv.SetLimits(Limits{RegisterBudget: 30 * time.Millisecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	var e errorResponse
	if code := postJSON(t, client, ts.URL+"/v1/datasets", RegisterRequest{
		ID: "d", Scheme: "test/slow", Data: []byte{1},
	}, &e); code != http.StatusServiceUnavailable {
		t.Fatalf("over-budget registration got status %d (%s), want 503", code, e.Error)
	}
	if !strings.Contains(e.Error, "request budget exceeded") {
		t.Fatalf("503 error %q does not state the budget", e.Error)
	}
	if st := envStats(t, client, ts.URL); st.BudgetExceeded != 1 {
		t.Fatalf("budget_exceeded = %d, want 1", st.BudgetExceeded)
	}

	// Drain the abandoned build; no catalog entry may remain.
	close(gate)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, ok := srv.Registry().GetDataset("d"); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("over-budget registration left a catalog entry")
		}
		time.Sleep(time.Millisecond)
	}
	if code := getJSON(t, client, ts.URL+"/v1/datasets/d", nil); code != http.StatusNotFound {
		t.Fatalf("GET after abandoned registration got status %d, want 404", code)
	}

	// The id is free for a properly-budgeted retry.
	var info DatasetInfo
	if code := postJSON(t, client, ts.URL+"/v1/datasets", RegisterRequest{
		ID: "d", Scheme: "test/slow", Data: []byte{1},
	}, &info); code != http.StatusOK {
		t.Fatalf("retry registration got status %d, want 200", code)
	}
}

// TestEnvelopePatchBudget pins maintenance budgets over HTTP: with an
// exhausted budget the PATCH is a 503 and nothing is applied — version
// unchanged, refused delta invisible.
func TestEnvelopePatchBudget(t *testing.T) {
	srv := New(store.NewRegistry(""), nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	if code := postJSON(t, client, ts.URL+"/v1/datasets", RegisterRequest{
		ID: "d", Scheme: "point-selection/sorted-keys", Data: schemes.RelationFromKeys([]int64{2, 4}),
	}, nil); code != http.StatusOK {
		t.Fatalf("register status %d", code)
	}
	// A degenerate budget is already exhausted when the PATCH starts.
	srv.SetLimits(Limits{RegisterBudget: time.Nanosecond})

	var e errorResponse
	if code := patchJSON(t, client, ts.URL+"/v1/datasets/d",
		[][]byte{schemes.KeysDelta([]int64{9})}, &e); code != http.StatusServiceUnavailable {
		t.Fatalf("over-budget PATCH got status %d (%s), want 503", code, e.Error)
	}
	if st := envStats(t, client, ts.URL); st.BudgetExceeded != 1 {
		t.Fatalf("budget_exceeded = %d, want 1", st.BudgetExceeded)
	}

	var info DatasetInfo
	if code := getJSON(t, client, ts.URL+"/v1/datasets/d", &info); code != http.StatusOK || info.Version != 0 {
		t.Fatalf("after refused PATCH: status %d version %d, want 200 and 0", code, info.Version)
	}
	var qr QueryResponse
	if code := postJSON(t, client, ts.URL+"/v1/query", QueryRequest{
		Dataset: "d", Query: schemes.PointQuery(9),
	}, &qr); code != http.StatusOK || qr.Answer {
		t.Fatalf("refused delta visible: status %d answer %v", code, qr.Answer)
	}
}

// TestAnswerPathMemoized pins the hot-path fix: with a cache configured,
// the cache-fronted view is built once per dataset and reused across
// requests, and swapping the cache rebuilds it.
func TestAnswerPathMemoized(t *testing.T) {
	reg := store.NewRegistry("")
	srv := New(reg, nil)
	if _, err := reg.Register("d", schemes.PointSelectionScheme(), schemes.RelationFromKeys([]int64{2})); err != nil {
		t.Fatal(err)
	}
	ds, _ := reg.GetDataset("d")

	// No cache: the dataset itself, no wrapper.
	if got := srv.answerPath(ds); got != ds {
		t.Fatal("answerPath without a cache must return the dataset itself")
	}

	srv.SetAnswerCache(cache.New(1 << 20))
	v1 := srv.answerPath(ds)
	v2 := srv.answerPath(ds)
	if v1 == ds {
		t.Fatal("answerPath with a cache must return the fronted view")
	}
	if v1 != v2 {
		t.Fatal("answerPath rebuilt the cached view on a second request")
	}

	// Swapping the cache must drop the memoized view (it wraps the old
	// cache).
	srv.SetAnswerCache(cache.New(1 << 20))
	if v3 := srv.answerPath(ds); v3 == v1 {
		t.Fatal("answerPath kept a view wrapping the replaced cache")
	}

	// Disabling the cache returns the raw dataset again.
	srv.SetAnswerCache(nil)
	if got := srv.answerPath(ds); got != ds {
		t.Fatal("answerPath after disabling the cache must return the dataset itself")
	}
}
