package server

// The graceful-degradation suite for the HTTP layer: /healthz's
// per-dataset health map (and its ?verbose=0 liveness-probe compat
// shape), the breaker trip → fast 503 + jittered Retry-After → half-open
// probe heal cycle, degraded fallback answers carrying "degraded": true
// with exact verdicts, the per-query deadline's 504 taxonomy, and the
// ±20% Retry-After jitter bounds every advisory header obeys.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pitract/internal/core"
	"pitract/internal/schemes"
	"pitract/internal/store"
)

// TestRetryAfterJitterBounds pins the advisory-header jitter: a 10s base
// renders within ±20% (8..12 seconds inclusive), actually varies across
// draws, and a 1s base — the documented examples' case — always renders
// exactly "1" so the replayed doc bodies stay byte-stable.
func TestRetryAfterJitterBounds(t *testing.T) {
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		got := jitterSeconds(10 * time.Second)
		if got < 8 || got > 12 {
			t.Fatalf("jitterSeconds(10s) = %d, want within [8, 12] (±20%%)", got)
		}
		seen[got] = true
	}
	if len(seen) < 2 {
		t.Fatalf("jitterSeconds(10s) returned only %v over 200 draws; the jitter is not jittering", seen)
	}
	for i := 0; i < 200; i++ {
		if got := jitterSeconds(time.Second); got != 1 {
			t.Fatalf("jitterSeconds(1s) = %d, want 1 (the documented Retry-After examples pin it)", got)
		}
	}
	if got := jitterSeconds(0); got < 1 {
		t.Fatalf("jitterSeconds(0) = %d, want >= 1 (Retry-After must never advise 0)", got)
	}
}

// TestHealthzVerboseAndCompat pins both /healthz shapes: the default
// body carries a per-dataset health map with an overall status, and
// ?verbose=0 keeps the original two-field liveness shape, always 200.
func TestHealthzVerboseAndCompat(t *testing.T) {
	srv := New(store.NewRegistry(""), nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	for _, id := range []string{"m", "m2"} {
		if code := postJSON(t, client, ts.URL+"/v1/datasets", RegisterRequest{
			ID: id, Scheme: "point-selection/sorted-keys", Data: schemes.RelationFromKeys([]int64{2, 4}),
		}, nil); code != http.StatusOK {
			t.Fatalf("register %s status %d", id, code)
		}
	}

	var verbose struct {
		Status   string            `json:"status"`
		Datasets int               `json:"datasets"`
		Health   map[string]string `json:"health"`
	}
	if code := getJSON(t, client, ts.URL+"/healthz", &verbose); code != http.StatusOK {
		t.Fatalf("verbose healthz status %d, want 200", code)
	}
	if verbose.Status != "ok" || verbose.Datasets != 2 {
		t.Fatalf("verbose healthz = %+v, want status ok over 2 datasets", verbose)
	}
	if verbose.Health["m"] != "healthy" || verbose.Health["m2"] != "healthy" {
		t.Fatalf("health map %v, want both datasets healthy", verbose.Health)
	}

	var compat struct {
		Status   string            `json:"status"`
		Datasets int               `json:"datasets"`
		Health   map[string]string `json:"health"`
	}
	if code := getJSON(t, client, ts.URL+"/healthz?verbose=0", &compat); code != http.StatusOK {
		t.Fatalf("compat healthz status %d, want 200", code)
	}
	if compat.Status != "ok" || compat.Datasets != 2 || compat.Health != nil {
		t.Fatalf("compat healthz = %+v, want the original two-field shape with no health map", compat)
	}
}

// flakyPrepareCatalog returns a catalog with one scheme whose prepared
// answerer fails until healed flips true — the shape of a transient
// decode fault on the serving path — with fallback deciding whether the
// scheme also declares a degraded-mode answerer. Verdict: first query
// byte is even.
func flakyPrepareCatalog(healed *atomic.Bool, fallback bool) map[string]*core.Scheme {
	verdict := func(q []byte) (bool, error) { return len(q) > 0 && q[0]%2 == 0, nil }
	sch := &core.Scheme{
		SchemeName: "test/flaky-prepare",
		Preprocess: func(d []byte) ([]byte, error) { return d, nil },
		Answer:     func(pd, q []byte) (bool, error) { return verdict(q) },
		PrepareAnswerer: func(pd []byte) (core.Answerer, error) {
			if !healed.Load() {
				return nil, fmt.Errorf("injected decode fault")
			}
			return core.AnswererFunc(verdict), nil
		},
	}
	if fallback {
		sch.PrepareFallback = func(pd []byte) (core.Answerer, error) {
			return core.AnswererFunc(verdict), nil
		}
	}
	return map[string]*core.Scheme{sch.SchemeName: sch}
}

// TestBreakerTripsRefusesAndHeals walks the full breaker cycle over
// HTTP: repeated 500s (a sticky Prepare fault) trip the dataset open,
// an open breaker refuses fast with 503 + Retry-After and turns
// /healthz unhealthy, and — once the fault heals — the first admitted
// request past the backoff probes the exact path, retries the failed
// Prepare, and closes the breaker without any re-registration.
func TestBreakerTripsRefusesAndHeals(t *testing.T) {
	var healed atomic.Bool
	srv := New(store.NewRegistry(""), flakyPrepareCatalog(&healed, false))
	srv.Registry().SetBreakerConfig(store.BreakerConfig{
		Window: time.Second, DegradedAfter: 2, OpenAfter: 3,
		Backoff: 50 * time.Millisecond, MaxBackoff: 400 * time.Millisecond,
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	// Registration survives the Prepare fault (it is sticky, not fatal).
	if code := postJSON(t, client, ts.URL+"/v1/datasets", RegisterRequest{
		ID: "d", Scheme: "test/flaky-prepare", Data: []byte{1},
	}, nil); code != http.StatusOK {
		t.Fatalf("register status %d", code)
	}

	// Three server-shaped failures walk healthy → degraded → open. The
	// degraded decision still takes the exact path (no declared fallback,
	// ExactFallback holds), so each query surfaces the 500.
	for i := 0; i < 3; i++ {
		var e errorResponse
		if code := postJSON(t, client, ts.URL+"/v1/query", QueryRequest{
			Dataset: "d", Query: []byte{2},
		}, &e); code != http.StatusInternalServerError {
			t.Fatalf("query %d over a failed Prepare got status %d (%s), want 500", i, code, e.Error)
		}
	}

	// Open: refused fast, Retry-After advertised, /healthz drains the node.
	resp, err := client.Post(ts.URL+"/v1/query", "application/json",
		strings.NewReader(`{"dataset":"d","query":"Ag=="}`))
	if err != nil {
		t.Fatal(err)
	}
	var e errorResponse
	json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open breaker got status %d (%s), want 503", resp.StatusCode, e.Error)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("open-breaker 503 missing Retry-After")
	}
	if !strings.Contains(e.Error, `dataset "d" health breaker open`) {
		t.Fatalf("503 error %q does not name the open breaker", e.Error)
	}
	var hz struct {
		Status string            `json:"status"`
		Health map[string]string `json:"health"`
	}
	if code := getJSON(t, client, ts.URL+"/healthz", &hz); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz with an open breaker got status %d, want 503", code)
	}
	if hz.Status != "unhealthy" || hz.Health["d"] != "open" {
		t.Fatalf("healthz = %+v, want unhealthy with dataset d open", hz)
	}
	if st := envStats(t, client, ts.URL); st.Breaker503 != 1 {
		t.Fatalf("breaker_503 = %d, want 1", st.Breaker503)
	}

	// Heal the fault and wait out the backoff: the next request is the
	// half-open probe — it retries the Prepare and closes the breaker.
	healed.Store(true)
	time.Sleep(100 * time.Millisecond)
	var qr QueryResponse
	if code := postJSON(t, client, ts.URL+"/v1/query", QueryRequest{
		Dataset: "d", Query: []byte{2},
	}, &qr); code != http.StatusOK {
		t.Fatalf("probe after heal got status %d, want 200", code)
	}
	if !qr.Answer || qr.Degraded {
		t.Fatalf("probe answered (%v, degraded %v), want the exact (true, false)", qr.Answer, qr.Degraded)
	}
	if code := getJSON(t, client, ts.URL+"/healthz", &hz); code != http.StatusOK || hz.Health["d"] != "healthy" {
		t.Fatalf("healthz after heal = status %d %+v, want 200 and healthy", code, hz)
	}
}

// TestDegradedAnswersExactAndFlagged pins degraded-mode answering over
// HTTP: a degraded dataset with a declared fallback serves 200s with
// "degraded": true, every verdict identical to the exact oracle, and the
// stats counter accounting for each degraded response.
func TestDegradedAnswersExactAndFlagged(t *testing.T) {
	var healed atomic.Bool
	srv := New(store.NewRegistry(""), flakyPrepareCatalog(&healed, true))
	srv.Registry().SetBreakerConfig(store.BreakerConfig{
		Window: time.Minute, DegradedAfter: 2, OpenAfter: 100,
		Backoff: 50 * time.Millisecond,
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	if code := postJSON(t, client, ts.URL+"/v1/datasets", RegisterRequest{
		ID: "d", Scheme: "test/flaky-prepare", Data: []byte{1},
	}, nil); code != http.StatusOK {
		t.Fatalf("register status %d", code)
	}
	// Two sticky-Prepare 500s enter Degraded.
	for i := 0; i < 2; i++ {
		if code := postJSON(t, client, ts.URL+"/v1/query", QueryRequest{
			Dataset: "d", Query: []byte{2},
		}, nil); code != http.StatusInternalServerError {
			t.Fatalf("query %d got status %d, want 500", i, code)
		}
	}

	// Degraded + declared fallback: answers flow again, flagged, exact.
	for _, tc := range []struct {
		query []byte
		want  bool
	}{{[]byte{2}, true}, {[]byte{3}, false}} {
		var qr QueryResponse
		if code := postJSON(t, client, ts.URL+"/v1/query", QueryRequest{
			Dataset: "d", Query: tc.query,
		}, &qr); code != http.StatusOK {
			t.Fatalf("degraded query got status %d, want 200", code)
		}
		if !qr.Degraded {
			t.Fatal("degraded answer not flagged degraded")
		}
		if qr.Answer != tc.want {
			t.Fatalf("degraded verdict %v for query %v, exact oracle says %v — degradation changed an answer",
				qr.Answer, tc.query, tc.want)
		}
	}
	var br BatchResponse
	if code := postJSON(t, client, ts.URL+"/v1/query/batch", BatchRequest{
		Dataset: "d", Queries: [][]byte{{2}, {3}, {4}},
	}, &br); code != http.StatusOK {
		t.Fatalf("degraded batch got status %d, want 200", code)
	}
	if !br.Degraded || len(br.Answers) != 3 || !br.Answers[0] || br.Answers[1] || !br.Answers[2] {
		t.Fatalf("degraded batch = %+v, want flagged [true false true]", br)
	}

	var stats StatsResponse
	if code := getJSON(t, client, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if stats.DegradedAnswers != 3 {
		t.Fatalf("degraded_answers = %d, want 3 (two queries + one batch)", stats.DegradedAnswers)
	}
	// Degraded, not unhealthy: the node keeps serving, /healthz says so.
	var hz struct {
		Status string `json:"status"`
	}
	if code := getJSON(t, client, ts.URL+"/healthz", &hz); code != http.StatusOK || hz.Status != "degraded" {
		t.Fatalf("healthz = status %d %q, want 200 degraded", code, hz.Status)
	}
}

// TestQueryBudget504 pins the per-query deadline taxonomy: a query (and
// a batch) that outruns QueryBudget is abandoned with a 504 naming the
// budget, counted in the envelope stats, and the dataset keeps serving
// in-budget queries afterwards.
func TestQueryBudget504(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 4)
	srv := New(store.NewRegistry(""), blockingCatalog(gate, entered))
	srv.SetLimits(Limits{QueryBudget: 40 * time.Millisecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	if code := postJSON(t, client, ts.URL+"/v1/datasets", RegisterRequest{
		ID: "d", Scheme: "test/blocking", Data: []byte{1},
	}, nil); code != http.StatusOK {
		t.Fatalf("register status %d", code)
	}

	var e errorResponse
	if code := postJSON(t, client, ts.URL+"/v1/query", QueryRequest{
		Dataset: "d", Query: []byte("block"),
	}, &e); code != http.StatusGatewayTimeout {
		t.Fatalf("over-budget query got status %d (%s), want 504", code, e.Error)
	}
	if !strings.Contains(e.Error, "query budget exceeded") {
		t.Fatalf("504 error %q does not state the budget", e.Error)
	}
	if code := postJSON(t, client, ts.URL+"/v1/query/batch", BatchRequest{
		Dataset: "d", Queries: [][]byte{[]byte("block")},
	}, &e); code != http.StatusGatewayTimeout {
		t.Fatalf("over-budget batch got status %d (%s), want 504", code, e.Error)
	}

	st := envStats(t, client, ts.URL)
	if st.Deadline504 != 2 {
		t.Fatalf("deadline_504 = %d, want 2", st.Deadline504)
	}
	if st.QueryBudgetMs != 40 {
		t.Fatalf("query_budget_ms = %d, want 40", st.QueryBudgetMs)
	}

	// In-budget queries still serve: the deadline abandoned the stalled
	// workers, it did not poison the dataset.
	var qr QueryResponse
	if code := postJSON(t, client, ts.URL+"/v1/query", QueryRequest{
		Dataset: "d", Query: []byte("go"),
	}, &qr); code != http.StatusOK || !qr.Answer {
		t.Fatalf("in-budget query = status %d answer %v, want 200 true", code, qr.Answer)
	}
	close(gate) // drain the abandoned workers
	<-entered
	<-entered
}
