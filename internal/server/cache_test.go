package server

// The hot-path pins. TestCachedVsUncachedDifferential pins the whole
// answering stack to the raw Scheme.Answer oracle: prepared store answers,
// cache-fronted answers (cold and warm), sharded and unsharded, across a
// PATCH version bump and across save → reload. TestCacheRaceWithPatch
// pins version-keyed invalidation under concurrency: with the cache in
// front and deltas committing mid-traffic, no response may ever pair a
// version with a verdict computed against an older version.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"pitract/internal/cache"
	"pitract/internal/circuit"
	"pitract/internal/core"
	"pitract/internal/graph"
	"pitract/internal/relation"
	"pitract/internal/schemes"
	"pitract/internal/shard"
	"pitract/internal/store"
)

// hotPathCase is one servable scheme's differential workload.
type hotPathCase struct {
	scheme  *core.Scheme
	data    []byte
	queries [][]byte // valid and invalid mixed
	deltas  [][]byte // nil = scheme has no incremental form
}

func hotPathCases(t *testing.T) map[string]hotPathCase {
	t.Helper()
	rel := relation.Generate(relation.GenConfig{Rows: 120, Seed: 3, KeyMax: 200})
	list := schemes.EncodeList([]int64{2, 4, 6, 100, -7})
	dg := graph.RandomDirected(36, 90, 5)
	ug := graph.RandomConnectedUndirected(30, 60, 8)
	inst := circuit.Generate(circuit.GenConfig{Inputs: 6, Gates: 40, Seed: 4})
	cvp := circuit.EncodeInstance(&circuit.Instance{Circuit: inst, Inputs: circuit.RandomInputs(6, 9)})

	point := [][]byte{}
	for k := int64(-2); k < 210; k += 13 {
		point = append(point, schemes.PointQuery(k))
	}
	point = append(point, []byte{3}) // malformed

	ranges := [][]byte{
		schemes.RangeQuery(0, 50), schemes.RangeQuery(50, 0),
		schemes.RangeQuery(190, 400), schemes.RangeQuery(-10, -1), []byte{3},
	}

	pairs := func(n int) [][]byte {
		qs := [][]byte{}
		for u := 0; u < n; u += 3 {
			for v := 1; v < n; v += 5 {
				qs = append(qs, schemes.NodePairQuery(u, v))
			}
		}
		return append(qs, schemes.NodePairQuery(0, n+1), []byte{3})
	}

	gates := [][]byte{schemes.GateQuery(0), schemes.GateQuery(17), schemes.GateQuery(45), schemes.GateQuery(4096), []byte{3}}

	keysDelta := [][]byte{schemes.KeysDelta([]int64{7, 7, 201, -50})}
	// Edge deltas must connect previously unconnected regions so the
	// version bump observably changes verdicts.
	edgeDeltas := [][]byte{schemes.EdgeDelta(1, 30), schemes.EdgeDelta(30, 2)}

	return map[string]hotPathCase{
		"point-selection/sorted-keys": {schemes.PointSelectionScheme(), rel.Encode(), point, keysDelta},
		"point-selection/scan":        {schemes.PointSelectionScanScheme(), rel.Encode(), point, nil},
		"range-selection/sorted-keys": {schemes.RangeSelectionScheme(), rel.Encode(), ranges, keysDelta},
		"list-membership/sorted":      {schemes.ListMembershipScheme(), list, point, keysDelta},
		"reachability/closure-matrix": {schemes.ReachabilityScheme(), dg.Encode(), pairs(36), edgeDeltas},
		"reachability/bfs-per-query":  {schemes.ReachabilityBFSScheme(), dg.Encode(), pairs(36), edgeDeltas},
		"bds/visit-order":             {schemes.BDSScheme(), ug.Encode(), pairs(30), nil},
		"cvp/gate-values":             {schemes.CVPGateValueScheme(), cvp, gates, nil},
	}
}

// rawStoreOracle answers q with the raw (unprepared) Scheme.Answer against
// the store's current Π — the differential oracle for everything else.
func rawStoreOracle(st *store.Store, q []byte) (bool, error) {
	pd, _ := st.View()
	return st.Scheme.Answer(pd, q)
}

// assertAgrees pins got against the oracle, error-for-error.
func assertAgrees(t *testing.T, label string, i int, oracleV bool, oracleErr error, gotV bool, gotErr error) {
	t.Helper()
	if (oracleErr == nil) != (gotErr == nil) {
		t.Fatalf("%s: query %d: oracle err %v, got err %v", label, i, oracleErr, gotErr)
	}
	if oracleErr == nil && oracleV != gotV {
		t.Fatalf("%s: query %d: oracle %v, got %v", label, i, oracleV, gotV)
	}
}

// checkDataset pins ds (uncached), then a cache-fronted view of ds (cold
// pass filling the cache, warm pass served from it), against the oracle.
func checkDataset(t *testing.T, label string, oracle *store.Store, ds store.Dataset, c *cache.Cache, queries [][]byte) {
	t.Helper()
	cached := store.NewCachedDataset(ds, c)
	for pass, answerer := range []store.Dataset{ds, cached, cached} {
		for i, q := range queries {
			wantV, wantErr := rawStoreOracle(oracle, q)
			gotV, gotErr := answerer.Answer(q)
			assertAgrees(t, fmt.Sprintf("%s/pass%d", label, pass), i, wantV, wantErr, gotV, gotErr)
		}
	}
	// The batch paths, uncached and cached (cold cache state already warm
	// here — exercise the mixed hit/miss path with a fresh cache too).
	valid := [][]byte{}
	for _, q := range queries {
		if _, err := rawStoreOracle(oracle, q); err == nil {
			valid = append(valid, q)
		}
	}
	want, err := ds.AnswerBatch(valid, 4)
	if err != nil {
		t.Fatalf("%s: uncached batch: %v", label, err)
	}
	fresh := store.NewCachedDataset(ds, cache.New(1<<20))
	for _, b := range []store.Dataset{cached, fresh} {
		got, err := b.AnswerBatch(valid, 4)
		if err != nil {
			t.Fatalf("%s: cached batch: %v", label, err)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("%s: batch query %d: uncached %v, cached %v", label, i, want[i], got[i])
			}
		}
	}
}

// TestCachedVsUncachedDifferential is the acceptance pin: prepared and
// cached answer paths identical to the raw Answer oracle for every
// servable scheme, sharded and unsharded, across a PATCH version bump and
// across save → reload.
func TestCachedVsUncachedDifferential(t *testing.T) {
	for name, tc := range hotPathCases(t) {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			reg := store.NewRegistry(dir)
			c := cache.New(1 << 20)

			st, err := reg.Register("plain", tc.scheme, tc.data)
			if err != nil {
				t.Fatal(err)
			}
			checkDataset(t, "unsharded", st, st, c, tc.queries)

			var ss *shard.ShardedStore
			if shard.ForScheme(name) != nil {
				ss, err = shard.RegisterSharded(reg, "sharded", tc.scheme, shard.HashPartitioner{}, 3, tc.data)
				if err != nil {
					t.Fatal(err)
				}
				// The unsharded store is the sharded dataset's oracle.
				checkDataset(t, "sharded", st, ss, c, tc.queries)
			}

			// PATCH version bump: the maintained Π must answer fresh, not
			// from version-0 cache entries.
			if tc.deltas != nil {
				if _, err := reg.ApplyDelta("plain", tc.deltas); err != nil {
					t.Fatal(err)
				}
				checkDataset(t, "unsharded+patch", st, st, c, tc.queries)
				if ss != nil && shardedDeltaCapable(name) {
					if _, err := reg.ApplyDelta("sharded", tc.deltas); err != nil {
						t.Fatal(err)
					}
					checkDataset(t, "sharded+patch", st, ss, c, tc.queries)
				}
			}

			// Save → reload: a fresh registry over the same directory must
			// serve identically (snapshots restore Π and version, so even
			// the old cache's entries stay valid).
			reg2 := store.NewRegistry(dir)
			st2, err := reg2.Register("plain", tc.scheme, tc.data)
			if err != nil {
				t.Fatal(err)
			}
			if !st2.WasLoaded() {
				t.Fatal("reload did not come from the snapshot")
			}
			checkDataset(t, "unsharded+reload", st, st2, c, tc.queries)
			if ss != nil {
				ss2, err := shard.RegisterSharded(reg2, "sharded", tc.scheme, shard.HashPartitioner{}, 3, tc.data)
				if err != nil {
					t.Fatal(err)
				}
				checkDataset(t, "sharded+reload", st, ss2, c, tc.queries)
			}
		})
	}
}

// shardedDeltaCapable reports whether the scheme's sharded form routes
// deltas.
func shardedDeltaCapable(name string) bool {
	for _, s := range shard.DeltaCapableSchemes() {
		if s == name {
			return true
		}
	}
	return false
}

// TestCacheRaceWithPatch hammers one cached dataset with concurrent
// queries while deltas commit, and pins the staleness contract end to end:
// a response carrying version v must never hold a verdict computed against
// a version older than v. The workload makes that observable — vertex k
// becomes reachable from 0 exactly at version k — so any response with
// version ≥ k and answer false for (0, k) is a stale-cache bug. Run under
// -race in CI.
func TestCacheRaceWithPatch(t *testing.T) {
	const n = 24 // vertices; deltas chain 0→1→…→n-1
	g := graph.New(n, true)
	g.Normalize()

	reg := store.NewRegistry("")
	srv := New(reg, nil)
	srv.SetAnswerCache(cache.New(1 << 20))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body, _ := json.Marshal(RegisterRequest{ID: "chain", Scheme: "reachability/closure-matrix", Data: g.Encode()})
	resp, err := http.Post(ts.URL+"/v1/datasets", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: status %d", resp.StatusCode)
	}

	query := func(tt *testing.T, u, v int) (bool, uint64) {
		b, _ := json.Marshal(QueryRequest{Dataset: "chain", Query: schemes.NodePairQuery(u, v)})
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(b))
		if err != nil {
			tt.Error(err)
			return false, 0
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			tt.Errorf("query: status %d", resp.StatusCode)
			return false, 0
		}
		var qr QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			tt.Error(err)
			return false, 0
		}
		return qr.Answer, qr.Version
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var lastVersion uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := 1 + rng.Intn(n-1)
				ans, version := query(t, 0, k)
				if version < lastVersion {
					t.Errorf("version regressed: %d after %d", version, lastVersion)
				}
				lastVersion = version
				// Version v means deltas 1..v are visible: edges 0→1→…→v, so
				// (0,k) is reachable iff k <= v. A response claiming v ≥ k
				// with answer false served a stale verdict.
				if uint64(k) <= version && !ans {
					t.Errorf("stale verdict: (0,%d) false at version %d", k, version)
				}
				// The answer may be computed at a newer version than reported
				// (documented); true with version < k is therefore legal.
			}
		}(w)
	}

	// The maintainer: one delta per PATCH, versions 1..n-1.
	for k := 1; k < n; k++ {
		b, _ := json.Marshal(PatchRequest{Deltas: [][]byte{schemes.EdgeDelta(k-1, k)}})
		req, _ := http.NewRequest(http.MethodPatch, ts.URL+"/v1/datasets/chain", bytes.NewReader(b))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("patch %d: status %d", k, resp.StatusCode)
		}
	}
	close(stop)
	wg.Wait()

	// Every chain query must now be true at version n-1, cached or not.
	for k := 1; k < n; k++ {
		ans, version := query(t, 0, k)
		if version != uint64(n-1) || !ans {
			t.Fatalf("final state: (0,%d) = (%v, v%d), want (true, v%d)", k, ans, version, n-1)
		}
	}
}

// TestStatsCacheCounters pins the /v1/stats cache block: present with
// sensible counters when the cache is on, absent when off.
func TestStatsCacheCounters(t *testing.T) {
	reg := store.NewRegistry("")
	srv := New(reg, nil)
	srv.SetAnswerCache(cache.New(1 << 20))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body, _ := json.Marshal(RegisterRequest{ID: "m", Scheme: "list-membership/sorted", Data: schemes.EncodeList([]int64{2, 4, 6})})
	resp, err := http.Post(ts.URL+"/v1/datasets", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	for i := 0; i < 3; i++ { // one miss, two hits
		b, _ := json.Marshal(QueryRequest{Dataset: "m", Query: schemes.PointQuery(4)})
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	var stats StatsResponse
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Cache == nil {
		t.Fatal("stats.cache absent with the cache enabled")
	}
	if stats.Cache.Hits != 2 || stats.Cache.Misses != 1 || stats.Cache.Entries != 1 {
		t.Fatalf("cache stats = %+v, want 2 hits / 1 miss / 1 entry", *stats.Cache)
	}
	if stats.Cache.BudgetBytes != 1<<20 {
		t.Fatalf("budget = %d, want %d", stats.Cache.BudgetBytes, 1<<20)
	}

	// Without a cache the block is absent (omitempty on a nil pointer).
	srv2 := New(store.NewRegistry(""), nil)
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	resp2, err := http.Get(ts2.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp2.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["cache"]; ok {
		t.Fatal("stats.cache present without a cache")
	}
}
