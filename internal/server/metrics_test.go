package server

// The observability surface: GET /metrics exposition conformance, the
// /v1/stats additions (uptime, build info, per-scheme percentiles and
// failures, per-endpoint rejections, stage percentiles), request-ID
// assignment and echo, the slow-query log, and a -race scrape test that
// reads /metrics while query and PATCH traffic mutates every histogram.

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pitract/internal/obs"
	"pitract/internal/schemes"
	"pitract/internal/store"
)

// scrapeMetrics GETs /metrics and returns the body after checking status,
// content type, and exposition-format conformance.
func scrapeMetrics(t *testing.T, client *http.Client, base string) []byte {
	t.Helper()
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.CheckExposition(body); err != nil {
		t.Fatalf("/metrics exposition: %v\n%s", err, body)
	}
	return body
}

// TestMetricsEndpoint drives a register → query → PATCH round and asserts
// the exposition is conformant and covers the serve-path stages that round
// exercised.
func TestMetricsEndpoint(t *testing.T) {
	srv := New(store.NewRegistry(t.TempDir()), nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	if code := postJSON(t, client, ts.URL+"/v1/datasets", RegisterRequest{
		ID: "m", Scheme: "list-membership/sorted", Data: schemes.EncodeList([]int64{1, 2, 3}),
	}, nil); code != http.StatusOK {
		t.Fatalf("register: status %d", code)
	}
	if code := postJSON(t, client, ts.URL+"/v1/query",
		QueryRequest{Dataset: "m", Query: schemes.PointQuery(2)}, nil); code != http.StatusOK {
		t.Fatalf("query: status %d", code)
	}
	if code := patchJSON(t, client, ts.URL+"/v1/datasets/m",
		[][]byte{schemes.KeysDelta([]int64{9})}, nil); code != http.StatusOK {
		t.Fatalf("patch: status %d", code)
	}

	body := string(scrapeMetrics(t, client, ts.URL))
	// The registry is process-wide, so other tests may have added more
	// series; assert containment, never exact counts.
	for _, want := range []string{
		`pitract_stage_duration_seconds_bucket{stage="admission",le="+Inf"}`,
		`pitract_stage_duration_seconds_bucket{stage="preprocess",le="+Inf"}`,
		`pitract_stage_duration_seconds_bucket{stage="patch_apply",le="+Inf"}`,
		`pitract_answer_duration_seconds_bucket{scheme="list-membership/sorted",le="+Inf"}`,
		"# TYPE pitract_stage_duration_seconds histogram",
		"pitract_requests_in_flight",
		"pitract_preprocess_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Non-GET is refused.
	resp, err := client.Post(ts.URL+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics: status %d, want 405", resp.StatusCode)
	}
}

// TestMetricsScrapeRace scrapes /metrics concurrently with query and PATCH
// traffic; under -race this pins the lock-free histograms and the renderer,
// and every scrape must still be a conformant exposition.
func TestMetricsScrapeRace(t *testing.T) {
	srv := New(store.NewRegistry(t.TempDir()), nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	if code := postJSON(t, client, ts.URL+"/v1/datasets", RegisterRequest{
		ID: "r", Scheme: "list-membership/sorted", Data: schemes.EncodeList([]int64{1, 2, 3}),
	}, nil); code != http.StatusOK {
		t.Fatalf("register: status %d", code)
	}

	const rounds = 20
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			postJSON(t, client, ts.URL+"/v1/query",
				QueryRequest{Dataset: "r", Query: schemes.PointQuery(int64(i))}, nil)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			patchJSON(t, client, ts.URL+"/v1/datasets/r",
				[][]byte{schemes.KeysDelta([]int64{int64(1000 + i)})}, nil)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			scrapeMetrics(t, client, ts.URL)
		}
	}()
	wg.Wait()
	scrapeMetrics(t, client, ts.URL)
}

// TestStatsObservability pins the /v1/stats additions: uptime and build
// info, per-scheme failure counts and latency percentiles, the stage
// percentile block, and the per-endpoint rejection breakdown.
func TestStatsObservability(t *testing.T) {
	srv := New(store.NewRegistry(""), nil)
	srv.SetLimits(Limits{MaxBodyBytes: 256})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	if code := postJSON(t, client, ts.URL+"/v1/datasets", RegisterRequest{
		ID: "s", Scheme: "point-selection/sorted-keys",
		Data: schemes.RelationFromKeys([]int64{1, 2, 3}),
	}, nil); code != http.StatusOK {
		t.Fatalf("register: status %d", code)
	}
	if code := postJSON(t, client, ts.URL+"/v1/query",
		QueryRequest{Dataset: "s", Query: schemes.PointQuery(2)}, nil); code != http.StatusOK {
		t.Fatalf("query: status %d", code)
	}
	// One failing query → queries_failed, and one oversized body → the
	// per-endpoint 413 counter.
	if code := postJSON(t, client, ts.URL+"/v1/query",
		QueryRequest{Dataset: "s", Query: []byte{0xFF, 0xFF}}, nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("malformed query: status %d, want 422", code)
	}
	// Valid JSON shape so the decoder is still mid-parse when it crosses
	// the byte cap — the refusal must be the 413, not a 400 parse error.
	resp, err := client.Post(ts.URL+"/v1/query", "application/json",
		strings.NewReader(`{"dataset":"`+strings.Repeat("a", 512)+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}

	var stats StatsResponse
	if code := getJSON(t, client, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if stats.UptimeS <= 0 {
		t.Errorf("uptime_s = %v, want > 0", stats.UptimeS)
	}
	if stats.Build.GoVersion == "" {
		t.Error("build.go_version empty")
	}
	sch := stats.PerScheme["point-selection/sorted-keys"]
	if sch.QueriesFailed != 1 {
		t.Errorf("queries_failed = %d, want 1", sch.QueriesFailed)
	}
	if sch.P50Ns <= 0 || sch.P999Ns < sch.P50Ns {
		t.Errorf("percentiles not monotone/positive: %+v", sch)
	}
	if stats.Stages["admission"].Count == 0 {
		t.Errorf("stages.admission missing: %+v", stats.Stages)
	}
	ep := stats.Envelope.PerEndpoint["/v1/query"]
	if ep.RejectedBody413 != 1 {
		t.Errorf("per_endpoint /v1/query rejected_body_413 = %d, want 1 (%+v)",
			ep.RejectedBody413, stats.Envelope.PerEndpoint)
	}
}

// TestRequestID pins the tracing contract: a generated id always rides the
// response header; a client-supplied id is echoed in both the header and
// error bodies; implausible inbound ids are replaced.
func TestRequestID(t *testing.T) {
	srv := New(store.NewRegistry(""), nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	// No inbound id: one is generated for the header, and the error body
	// carries no request_id field (byte-stable for id-less clients).
	resp, err := client.Get(ts.URL + "/v1/datasets/ghost")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.Header.Get(RequestIDHeader) == "" {
		t.Error("no generated X-Request-ID on response")
	}
	if strings.Contains(string(body), "request_id") {
		t.Errorf("generated id leaked into error body: %s", body)
	}

	// Inbound id: echoed in the header and the error body.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/datasets/ghost", nil)
	req.Header.Set(RequestIDHeader, "doc-1")
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got != "doc-1" {
		t.Errorf("inbound id not echoed: header %q", got)
	}
	var e struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.RequestID != "doc-1" {
		t.Errorf("inbound id not in error body: %s (err %v)", body, err)
	}

	// Implausible inbound ids (oversized, non-printable) are replaced.
	for _, bad := range []string{strings.Repeat("x", 200), "a b"} {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
		req.Header.Set(RequestIDHeader, bad)
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got := resp.Header.Get(RequestIDHeader); got == bad || got == "" {
			t.Errorf("implausible id %q not replaced (got %q)", bad, got)
		}
	}
}

// TestRequestLogging pins the structured request log and the slow-query
// log: with a logger installed and a zero-distance threshold, one request
// produces a Debug request line and a Warn slow-request line, both carrying
// the request id.
func TestRequestLogging(t *testing.T) {
	srv := New(store.NewRegistry(""), nil)
	var buf bytes.Buffer
	var mu sync.Mutex
	srv.SetLogger(slog.New(slog.NewJSONHandler(&lockedWriter{w: &buf, mu: &mu},
		&slog.HandlerOptions{Level: slog.LevelDebug})))
	srv.SetSlowQueryThreshold(time.Nanosecond)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set(RequestIDHeader, "log-1")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, `"msg":"request"`) {
		t.Errorf("no request log line: %s", out)
	}
	if !strings.Contains(out, `"msg":"slow request"`) {
		t.Errorf("no slow-query log line: %s", out)
	}
	if !strings.Contains(out, `"request_id":"log-1"`) {
		t.Errorf("request id missing from log: %s", out)
	}
	if !strings.Contains(out, `"path":"/healthz"`) || !strings.Contains(out, `"status":200`) {
		t.Errorf("request fields missing from log: %s", out)
	}
}

// lockedWriter serializes writes so the slog handler and the test's reads
// never race.
type lockedWriter struct {
	w  io.Writer
	mu *sync.Mutex
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}
