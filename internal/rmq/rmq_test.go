package rmq

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// crossCheck asserts that every querier answers every range identically to
// the naive scan, which is correct by construction.
func crossCheck(t *testing.T, a []int64, q Querier, name string) {
	t.Helper()
	naive := NewNaive(a)
	n := len(a)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			want := naive.Query(i, j)
			got := q.Query(i, j)
			if got != want {
				t.Fatalf("%s: Query(%d,%d) = %d (val %d), want %d (val %d); a=%v",
					name, i, j, got, a[got], want, a[want], a)
			}
		}
	}
}

func randArray(rng *rand.Rand, n, valueRange int) []int64 {
	a := make([]int64, n)
	for i := range a {
		a[i] = int64(rng.Intn(valueRange)) // small range forces ties
	}
	return a
}

func TestSparseMatchesNaiveExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		a := randArray(rng, 1+rng.Intn(60), 8)
		crossCheck(t, a, NewSparse(a), "sparse")
	}
}

func TestFischerHeunMatchesNaiveExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		a := randArray(rng, 1+rng.Intn(120), 6)
		for _, bs := range []int{0, 1, 2, 3, 5, 8} {
			crossCheck(t, a, NewFischerHeun(a, bs), "fischer-heun")
		}
	}
}

func TestFischerHeunQuick(t *testing.T) {
	f := func(raw []int8, bs uint8) bool {
		if len(raw) == 0 {
			return true
		}
		a := make([]int64, len(raw))
		for i, v := range raw {
			a[i] = int64(v)
		}
		q := NewFischerHeun(a, int(bs%10))
		naive := NewNaive(a)
		rng := rand.New(rand.NewSource(int64(len(raw))))
		for trial := 0; trial < 20; trial++ {
			i := rng.Intn(len(a))
			j := i + rng.Intn(len(a)-i)
			if q.Query(i, j) != naive.Query(i, j) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestTieBreaksLeftmost(t *testing.T) {
	a := []int64{5, 1, 3, 1, 1, 2}
	for _, q := range []Querier{NewNaive(a), NewSparse(a), NewFischerHeun(a, 2)} {
		if got := q.Query(0, 5); got != 1 {
			t.Errorf("%T Query(0,5) = %d, want leftmost 1", q, got)
		}
		if got := q.Query(2, 5); got != 3 {
			t.Errorf("%T Query(2,5) = %d, want leftmost 3", q, got)
		}
	}
}

func TestSingleElementAndFullRange(t *testing.T) {
	a := []int64{4}
	for _, q := range []Querier{NewNaive(a), NewSparse(a), NewFischerHeun(a, 0)} {
		if q.Query(0, 0) != 0 {
			t.Errorf("%T single element broken", q)
		}
	}
}

func TestQueryPanicsOutOfBounds(t *testing.T) {
	a := []int64{1, 2, 3}
	cases := [][2]int{{-1, 1}, {0, 3}, {2, 1}}
	for _, q := range []Querier{NewNaive(a), NewSparse(a), NewFischerHeun(a, 2)} {
		for _, c := range cases {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%T Query(%d,%d) did not panic", q, c[0], c[1])
					}
				}()
				q.Query(c[0], c[1])
			}()
		}
	}
}

func TestCartesianSignatureSharing(t *testing.T) {
	// Blocks with the same relative order must share a signature even with
	// different values; different shapes must differ.
	if cartesianSignature([]int64{1, 5, 3}) != cartesianSignature([]int64{10, 50, 30}) {
		t.Error("order-isomorphic blocks got different signatures")
	}
	if cartesianSignature([]int64{1, 2, 3}) == cartesianSignature([]int64{3, 2, 1}) {
		t.Error("distinct shapes share a signature")
	}
	// Signatures encode block length via their number of 1 bits, so blocks
	// of different lengths can never collide.
	if cartesianSignature([]int64{7}) == cartesianSignature([]int64{2, 1}) {
		t.Error("blocks of different length share a signature")
	}
}

func TestWordsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randArray(rng, 1<<14, 1000)
	naive, sparse, fh := NewNaive(a), NewSparse(a), NewFischerHeun(a, 0)
	if naive.Words() != 0 {
		t.Error("naive should report zero words")
	}
	if sparse.Words() <= 0 || fh.Words() <= 0 {
		t.Error("preprocessed structures should report positive words")
	}
	// The Fischer–Heun structure exists to use asymptotically less space
	// than the sparse table; at n=16384 the gap must already be visible.
	if fh.Words() >= sparse.Words() {
		t.Errorf("fischer-heun words %d not below sparse words %d", fh.Words(), sparse.Words())
	}
}

func TestEmptyArrayConstruction(t *testing.T) {
	// Construction on empty arrays must not panic (queries on them are
	// invalid and panic per contract).
	NewSparse(nil)
	NewFischerHeun(nil, 0)
}

func TestFischerHeunBlockSizeClamped(t *testing.T) {
	a := make([]int64, 64)
	f := NewFischerHeun(a, 100)
	if f.BlockSize() > 15 {
		t.Fatalf("block size %d exceeds signature capacity", f.BlockSize())
	}
}
