package rmq

// FischerHeun implements the block-decomposition RMQ of Fischer & Heun
// (SICOMP 40(2), 2011), the structure the paper cites in §4(3).
//
// The array is cut into blocks of b ≈ (log2 n)/4 elements. Queries inside a
// block are answered from a lookup table indexed by the block's Cartesian
// tree, encoded as a ballot sequence of 2b bits; there are fewer than 4^b
// distinct trees, so the tables are small and shared between blocks of equal
// shape. Queries spanning blocks decompose into an in-block suffix, a run of
// whole blocks answered by a sparse table over block minima, and an in-block
// prefix. Every query costs O(1); the auxiliary space is o(n log n), the
// point of the construction.
type FischerHeun struct {
	a         []int64
	blockSize int
	// blockSig[k] is the Cartesian-tree signature of block k.
	blockSig []uint32
	// inBlock[sig] is a table T where T[i*b+j] is the argmin offset for the
	// in-block range [i, j]; built lazily per distinct signature.
	inBlock map[uint32][]int8
	// blockMinPos[k] is the absolute position of block k's minimum.
	blockMinPos []int32
	// summary answers RMQ over the block-minimum array.
	summary *Sparse
}

// NewFischerHeun preprocesses the array. The block size may be forced with
// blockSize > 0 (used by tests and ablations); pass 0 for the canonical
// (log2 n)/4 choice.
func NewFischerHeun(a []int64, blockSize int) *FischerHeun {
	n := len(a)
	b := blockSize
	if b <= 0 {
		b = 1
		for v := n; v > 1; v >>= 1 {
			b++
		}
		b /= 4
		if b < 1 {
			b = 1
		}
	}
	if b > 15 {
		b = 15 // the ballot signature occupies 2b bits of a uint32
	}
	f := &FischerHeun{a: a, blockSize: b, inBlock: make(map[uint32][]int8)}
	if n == 0 {
		f.summary = NewSparse(nil)
		return f
	}
	nBlocks := (n + b - 1) / b
	f.blockSig = make([]uint32, nBlocks)
	f.blockMinPos = make([]int32, nBlocks)
	mins := make([]int64, nBlocks)
	for k := 0; k < nBlocks; k++ {
		lo := k * b
		hi := lo + b
		if hi > n {
			hi = n
		}
		block := a[lo:hi]
		sig := cartesianSignature(block)
		f.blockSig[k] = sig
		if _, ok := f.inBlock[sig]; !ok {
			f.inBlock[sig] = buildInBlockTable(block, b)
		}
		best := 0
		for i := 1; i < len(block); i++ {
			if block[i] < block[best] {
				best = i
			}
		}
		f.blockMinPos[k] = int32(lo + best)
		mins[k] = block[best]
	}
	f.summary = NewSparse(mins)
	return f
}

// cartesianSignature returns the ballot-sequence encoding of the block's
// Cartesian tree: simulate the left-to-right stack construction, emitting a
// 1-bit per push and a 0-bit per pop. Blocks with equal signatures answer
// every in-block RMQ at the same offset, which is what lets the lookup
// tables be shared.
func cartesianSignature(block []int64) uint32 {
	var sig uint32
	var stack []int64
	for _, v := range block {
		for len(stack) > 0 && stack[len(stack)-1] > v {
			stack = stack[:len(stack)-1]
			sig <<= 1 // pop: 0 bit
		}
		stack = append(stack, v)
		sig = sig<<1 | 1 // push: 1 bit
	}
	return sig
}

// buildInBlockTable precomputes argmin offsets for all in-block ranges of a
// representative block. Offsets are relative to the block start; ranges
// beyond the (possibly short, final) block reuse the last valid offset and
// are never queried.
func buildInBlockTable(block []int64, b int) []int8 {
	table := make([]int8, b*b)
	for i := 0; i < len(block); i++ {
		best := i
		for j := i; j < len(block); j++ {
			if block[j] < block[best] {
				best = j
			}
			table[i*b+j] = int8(best)
		}
	}
	return table
}

// Query answers RMQ(i, j) in O(1).
func (f *FischerHeun) Query(i, j int) int {
	checkBounds(len(f.a), i, j)
	b := f.blockSize
	bi, bj := i/b, j/b
	if bi == bj {
		return f.inBlockQuery(bi, i-bi*b, j-bi*b)
	}
	best := f.inBlockQuery(bi, i-bi*b, b-1) // suffix of the left block
	right := f.inBlockQuery(bj, 0, j-bj*b)  // prefix of the right block
	if f.a[right] < f.a[best] {
		best = right
	}
	if bi+1 <= bj-1 {
		mid := int(f.blockMinPos[f.summary.Query(bi+1, bj-1)])
		if f.a[mid] < f.a[best] || (f.a[mid] == f.a[best] && mid < best) {
			best = mid
		}
	}
	return best
}

func (f *FischerHeun) inBlockQuery(block, i, j int) int {
	b := f.blockSize
	lo := block * b
	// Clamp to the (possibly short) final block.
	maxOff := len(f.a) - lo - 1
	if j > maxOff {
		j = maxOff
	}
	off := f.inBlock[f.blockSig[block]][i*b+j]
	return lo + int(off)
}

// Words reports the auxiliary memory footprint.
func (f *FischerHeun) Words() int {
	w := len(f.blockSig)/2 + len(f.blockMinPos)/2
	for _, t := range f.inBlock {
		w += len(t) / 8 // int8 entries
	}
	if f.summary != nil {
		w += f.summary.Words()
	}
	return w
}

// BlockSize reports the block size in use.
func (f *FischerHeun) BlockSize() int { return f.blockSize }
