// Package rmq implements range-minimum-query structures over static arrays.
//
// §4(3) of the paper cites Fischer & Heun's space-efficient preprocessing
// schemes [18]: preprocess an array A[1..n] in PTIME so that every query
// RMQ_A(i, j) — the position of a minimum element of A[i..j] — is answered
// in O(1) time. Three structures are provided:
//
//   - Naive: no preprocessing, O(j-i) per query (the big-data baseline);
//   - Sparse: the O(n log n)-word sparse table with O(1) queries;
//   - FischerHeun: the block-decomposed structure with O(n)-ish space and
//     O(1) queries, using per-block Cartesian-tree signatures.
//
// All structures break ties toward the leftmost minimising position, so
// their answers are comparable bit-for-bit.
package rmq

import "fmt"

// Querier answers range-minimum queries over the array it was built from.
type Querier interface {
	// Query returns the leftmost position of a minimum of A[i..j]
	// (inclusive bounds). It panics if i > j or the bounds are out of
	// range, mirroring slice-indexing discipline.
	Query(i, j int) int
	// Words reports the approximate number of 64-bit words of auxiliary
	// memory the structure retains (excluding the input array), for the
	// space-ablation experiment.
	Words() int
}

func checkBounds(n, i, j int) {
	if i < 0 || j >= n || i > j {
		panic(fmt.Sprintf("rmq: query [%d,%d] out of bounds for n=%d", i, j, n))
	}
}

// Naive answers queries by scanning; it is the "no preprocessing" baseline.
type Naive struct{ a []int64 }

// NewNaive wraps the array without copying.
func NewNaive(a []int64) *Naive { return &Naive{a: a} }

// Query scans A[i..j] for the leftmost minimum.
func (q *Naive) Query(i, j int) int {
	checkBounds(len(q.a), i, j)
	best := i
	for k := i + 1; k <= j; k++ {
		if q.a[k] < q.a[best] {
			best = k
		}
	}
	return best
}

// Words reports zero: the naive structure keeps no auxiliary memory.
func (q *Naive) Words() int { return 0 }

// Sparse is the classic O(n log n) sparse table.
type Sparse struct {
	a     []int64
	log2  []int // floor(log2(k)) for k in [1, n]
	table [][]int32
}

// NewSparse preprocesses the array in O(n log n) time and space.
func NewSparse(a []int64) *Sparse {
	n := len(a)
	s := &Sparse{a: a, log2: make([]int, n+1)}
	for k := 2; k <= n; k++ {
		s.log2[k] = s.log2[k/2] + 1
	}
	if n == 0 {
		return s
	}
	levels := s.log2[n] + 1
	s.table = make([][]int32, levels)
	s.table[0] = make([]int32, n)
	for i := range s.table[0] {
		s.table[0][i] = int32(i)
	}
	for k := 1; k < levels; k++ {
		width := 1 << k
		s.table[k] = make([]int32, n-width+1)
		for i := 0; i+width <= n; i++ {
			left := s.table[k-1][i]
			right := s.table[k-1][i+width/2]
			if a[right] < a[left] {
				s.table[k][i] = right
			} else {
				s.table[k][i] = left
			}
		}
	}
	return s
}

// Query answers in O(1) by overlapping two power-of-two windows.
func (s *Sparse) Query(i, j int) int {
	checkBounds(len(s.a), i, j)
	k := s.log2[j-i+1]
	left := s.table[k][i]
	right := s.table[k][j-(1<<k)+1]
	// Tie-break toward the leftmost position: strict comparison on the
	// right window only improves on a strictly smaller value; when values
	// tie we must still prefer the smaller index.
	if s.a[right] < s.a[left] || (s.a[right] == s.a[left] && right < left) {
		return int(right)
	}
	return int(left)
}

// Words reports the auxiliary table size.
func (s *Sparse) Words() int {
	w := len(s.log2) / 2 // log2 entries are small; count them as half words
	for _, lvl := range s.table {
		w += len(lvl) / 2 // int32 = half a word
	}
	return w
}
