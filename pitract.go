// Package pitract is the public API of the Π-tractability library, a full
// implementation of Fan, Geerts & Neven, "Making Queries Tractable on Big
// Data with Preprocessing" (VLDB 2013).
//
// The library has three layers:
//
//   - The formal framework (Definitions 1–8 of the paper): languages of
//     pairs over Σ*, factorizations Υ = (π1, π2, ρ), Π-tractability schemes
//     (PTIME preprocessing + NC answering), NC-factor reductions and
//     F-reductions, the Lemma 2 padding composition and the Lemma 3 scheme
//     transport.
//
//   - Executable case studies (§4 of the paper): point/range selection with
//     index preprocessing, list membership, reachability with a closure
//     matrix, breadth-depth search under both Figure-1 factorizations, the
//     circuit value problem under the Corollary-6 and Theorem-9
//     factorizations, and the full P → CVP → BDS completeness chain built
//     from a Turing-machine simulator and a Cook–Levin tableau compiler.
//
//   - An experiment harness regenerating every figure, example and case
//     study of the paper as a measured table (see Experiments and
//     RunExperiment, or the pitract CLI).
//
// On top of the reproduction sits a concurrent execution engine: the PRAM
// simulator has a goroutine-parallel executor that is observationally
// identical to the sequential oracle (WithPRAMWorkers), and every scheme's
// Answer is safe from many goroutines after one preprocessing pass, so
// batches of queries can be served concurrently from one preprocessed
// store (AnswerBatch; experiments X1 and X2 measure both).
//
// The serving subsystem makes Π(D) a durable artifact and puts it on the
// network: OpenStore/StoreRegistry persist preprocessed stores as
// versioned, checksummed snapshots (computed once, reloaded across process
// restarts), and NewServer exposes a registry as an HTTP JSON API — the
// `pitract serve` subcommand; experiment X3 measures the served path
// against direct Answer calls.
//
// On top of that sits horizontal scaling: a dataset can be partitioned
// across n preprocessed stores (BuildShardedStore, RegisterSharded, the
// server's ?shards=N parameter, the CLI's -shards flag) with hash or range
// partitioning. Queries route to the shard owning their answer or fan out
// to every shard and merge scheme-specifically (reachability ORs the
// same-shard verdict with a cross-edge portal-overlay check); differential
// tests pin sharded answers identical to unsharded ones, and experiment X4
// measures preprocess time, snapshot bytes, and served QPS per shard
// count.
//
// Registered datasets are live-updatable (§1 justification (3)): for
// schemes with an incremental form (IncrementalForScheme),
// StoreRegistry.ApplyDelta — and HTTP PATCH /v1/datasets/{id} — maintains
// Π(D ⊕ ∆D) in place instead of re-preprocessing, bumps a monotonic
// dataset version reported in every query and info response, and
// atomically re-snapshots so restarts resume from the maintained Π.
// Sharded datasets route each delta to the shards it lands on (key batches
// split by partitioner; reachability edge inserts update the owning
// shard's closure and rebuild the portal overlay). A maintained-vs-rebuilt
// differential suite pins ApplyDelta equivalent to preprocessing the
// updated data from scratch, and experiment X5 measures maintain vs
// re-register time.
//
// The hot-path query engine keeps the per-query cost down to the probe:
// every store decodes Π once into a typed prepared answerer
// (PreparedScheme/Answerer — closure matrices as word-packed bitsets,
// sorted files as decoded arrays, the BFS baseline as in-memory
// adjacency) refreshed atomically with ⟨Π, version⟩ on every maintenance
// commit, and an optional answer cache (NewAnswerCache, NewCachedDataset,
// Server.SetAnswerCache, `pitract serve -cache-bytes`) memoizes hot
// ⟨dataset, version, query⟩ verdicts in a sharded byte-budgeted LRU with
// singleflight coalescing — version-keyed, so PATCH invalidates for free.
// Both paths are differentially pinned to the raw Answer oracle, and
// experiment X6 measures cached vs uncached QPS over hot/zipf/cold mixes.
//
// An observability layer watches all of it without getting in its way:
// every serve-path stage (admission, cache lookup, shard fan-out/merge,
// preprocess, snapshot I/O, PATCH apply/persist) records into lock-free
// log-bucketed latency histograms in a process-wide metric registry
// (ObsDefaultRegistry), rendered as Prometheus text exposition by GET
// /metrics, summarized as per-scheme and per-stage percentiles in
// /v1/stats (with uptime and build info), and traced per request via
// X-Request-ID and structured slog request/slow-query logging (`pitract
// serve -log-level/-log-format/-slow-query-ms`; -pprof-addr serves
// net/http/pprof on its own listener). SetMetricsEnabled(false) is the
// kill switch; experiment X8 measures the instrumentation's overhead.
//
// The serving path degrades gracefully instead of falling over: every
// query can carry a deadline (AnswerWithin, `pitract serve
// -query-budget-ms`; overruns are abandoned with 504 and the late worker's
// result dropped), each dataset is fronted by a health circuit breaker
// (HealthBreaker — repeated serve-path failures trip it open and traffic
// is refused fast with 503 + Retry-After until a backoff-paced probe
// heals it), corrupt snapshots and delta logs are quarantined aside
// (QuarantinePath) and rebuilt from source, and schemes with a declared
// cheaper fallback keep answering exactly in degraded mode while
// unhealthy. Experiment X11 drives a live server through fault injection
// and pins all of it differentially.
//
// See README.md for a tour, docs/ARCHITECTURE.md for the layer map,
// docs/API.md for the HTTP reference, and EXPERIMENTS.md for
// paper-vs-measured results.
package pitract

import (
	"fmt"
	"io"

	"pitract/internal/cache"
	"pitract/internal/circuit"
	"pitract/internal/compress"
	"pitract/internal/core"
	"pitract/internal/graph"
	"pitract/internal/harness"
	"pitract/internal/inc"
	"pitract/internal/obs"
	"pitract/internal/pram"
	"pitract/internal/relation"
	"pitract/internal/schemes"
	"pitract/internal/server"
	"pitract/internal/shard"
	"pitract/internal/store"
	"pitract/internal/tm"
	"pitract/internal/topk"
	"pitract/internal/views"
)

// --- the formal framework (internal/core) -----------------------------------

type (
	// Language is a decidable language of pairs S ⊆ Σ*×Σ*, the paper's
	// representation of a Boolean query class.
	Language = core.Language
	// LanguageFunc adapts a decision function to Language.
	LanguageFunc = core.LanguageFunc
	// Problem is a decision problem L ⊆ Σ* with a reference membership test.
	Problem = core.Problem
	// Factorization is Υ = (π1, π2, ρ): it splits instances into data and
	// query parts.
	Factorization = core.Factorization
	// Scheme witnesses Π-tractability: PTIME Preprocess + NC Answer
	// (Definition 1).
	Scheme = core.Scheme
	// Pair is one ⟨D, Q⟩ instance.
	Pair = core.Pair
	// Reduction is an (α, β) map between languages of pairs (≤NC_F, and the
	// map component of ≤NC_fa).
	Reduction = core.Reduction
	// FactorReduction is a full NC-factor reduction with both factorizations
	// (Definition 4).
	FactorReduction = core.FactorReduction
	// Registry collects query classes for the Figure 2 landscape.
	Registry = core.Registry
	// Entry is one registry row.
	Entry = core.Entry
	// Class places a query class in the paper's landscape.
	Class = core.Class
	// Measurement is one (size, cost) sample for growth classification.
	Measurement = core.Measurement
	// Fit is a fitted growth family with its log-log slope.
	Fit = core.Fit
	// Growth labels a growth family (constant / polylog / polynomial).
	Growth = core.Growth
	// FuncScheme witnesses Π-tractability of a function problem (§8(3)
	// extension).
	FuncScheme = core.FuncScheme
	// FuncLanguage is a reference function F: Σ*×Σ* → Σ*.
	FuncLanguage = core.FuncLanguage
	// RewritingScheme is the revised Definition 1 with a query-rewriting
	// function λ.
	RewritingScheme = core.RewritingScheme
	// IncrementalScheme extends a Scheme with maintenance of Π(D ⊕ ∆D).
	IncrementalScheme = core.IncrementalScheme
	// Answerer is one prepared Π(D): the scheme's typed, decoded-once
	// in-memory form, whose Answer does only the probe (the hot-path seam
	// every Store answers through).
	Answerer = core.Answerer
	// PreparedScheme is the prepared-answerer seam: anything that decodes
	// one Π(D) into an Answerer. Every *Scheme implements it — natively
	// via its typed prepared form, or through a raw-Answer fallback.
	PreparedScheme = core.PreparedScheme
)

// Landscape classes (Figure 2).
const (
	// ClassNC: answerable in NC with no preprocessing.
	ClassNC = core.ClassNC
	// ClassPiT0Q: Π-tractable with its natural factorization.
	ClassPiT0Q = core.ClassPiT0Q
	// ClassPiTQ: can be made Π-tractable by re-factorization (= P,
	// Corollary 6).
	ClassPiTQ = core.ClassPiTQ
	// ClassP: PTIME, not known (or impossible unless P=NC) to be
	// Π-tractable.
	ClassP = core.ClassP
	// ClassNPComplete: not Π-tractable unless P = NP (Corollary 7).
	ClassNPComplete = core.ClassNPComplete
)

// Growth families.
const (
	// GrowthConstant: cost independent of input size.
	GrowthConstant = core.GrowthConstant
	// GrowthPolylog: cost polynomial in log n — the NC answering budget.
	GrowthPolylog = core.GrowthPolylog
	// GrowthPolynomial: cost n^a; preprocessing did not help.
	GrowthPolynomial = core.GrowthPolynomial
)

// Framework functions.
var (
	// PadPair encodes (d, q) as one string — the paper's "@" padding.
	PadPair = core.PadPair
	// UnpadPair splits a padded string back into (d, q).
	UnpadPair = core.UnpadPair
	// PairLanguage builds S(L,Υ) from a problem and a factorization
	// (Proposition 1).
	PairLanguage = core.PairLanguage
	// IdentityFactorization is the π1(x)=π2(x)=x factorization from the
	// Theorem 5 proof.
	IdentityFactorization = core.IdentityFactorization
	// EmptyDataFactorization is Theorem 9's Υ0: nothing to preprocess.
	EmptyDataFactorization = core.EmptyDataFactorization
	// PaddedFactorization is the Lemma 2 padding construction.
	PaddedFactorization = core.PaddedFactorization
	// TransportScheme carries Π-tractability backwards along a reduction
	// (Lemma 3 / Lemma 8).
	TransportScheme = core.TransportScheme
	// Compose composes reductions across mismatched middle factorizations
	// (Lemma 2).
	Compose = core.Compose
	// Classify fits measured costs against polylog vs polynomial growth.
	Classify = core.Classify
)

// --- concurrent batch answering -----------------------------------------------

// AnswerBatch answers a batch of queries concurrently against one
// preprocessed store, using a bounded worker pool. It is the entry point
// for the preprocess-once/serve-many mode: Π(D) is immutable, so any
// number of goroutines may answer against it at once (every scheme obeys
// the concurrency contract documented on Scheme). parallelism <= 0 selects
// GOMAXPROCS. Results come back in query order; the first failing query
// aborts the batch.
//
// Scheme.AnswerBatch is the same operation as a method; this function
// exists so the batch entry point is discoverable at the package top
// level.
func AnswerBatch(s *Scheme, pd []byte, queries [][]byte, parallelism int) ([]bool, error) {
	return s.AnswerBatch(pd, queries, parallelism)
}

// ApplyBatch is AnswerBatch for function schemes (RMQ, LCA): concurrent
// Apply over one preprocessed store, outputs in query order.
func ApplyBatch(s *FuncScheme, pd []byte, queries [][]byte, parallelism int) ([][]byte, error) {
	return s.ApplyBatch(pd, queries, parallelism)
}

// SetExperimentParallelism sets the worker count used by the parallel
// experiments (X1, X2) — the library face of the CLI's -parallel flag.
// n <= 0 restores the GOMAXPROCS default.
var SetExperimentParallelism = harness.SetParallelism

// ExperimentParallelism reports the effective worker count for the
// parallel experiments.
var ExperimentParallelism = harness.Parallelism

// --- persistence and serving (internal/store, internal/server) -----------------

type (
	// Store is one preprocessed store: a scheme plus its immutable Π(D),
	// ready to answer from any number of goroutines.
	Store = store.Store
	// StoreSnapshot is the versioned, checksummed on-disk form of a
	// preprocessed store. (Distinct from the Figure 2 Registry type above:
	// that registry catalogues query classes, this subsystem catalogues
	// preprocessed datasets.)
	StoreSnapshot = store.Snapshot
	// StoreRegistry maps dataset IDs to preprocessed stores, preprocessing
	// exactly once per dataset and optionally persisting snapshots.
	StoreRegistry = store.Registry
	// Server serves a StoreRegistry over an HTTP JSON API (see the pitract
	// CLI's serve subcommand and examples/serve).
	Server = server.Server
	// ServerLimits configures a Server's serving envelope — body/batch
	// caps, concurrency admission (429 + Retry-After), and registration/
	// maintenance wall budgets (503, no catalog side effects). Install
	// with Server.SetLimits; the CLI face is `pitract serve`'s -max-* and
	// -register-budget flags.
	ServerLimits = server.Limits
	// ServerEnvelopeStats is the /v1/stats envelope block: the in-flight
	// gauge, the active limits, and every rejection the envelope issued.
	ServerEnvelopeStats = server.EnvelopeStats
	// StoreBudgetError is the error a registry returns when a
	// RegisterContext or ApplyDeltaContext call outruns its context: the
	// work is abandoned (no catalog entry; nothing applied) and the id
	// stays free for a retried attempt.
	StoreBudgetError = store.BudgetError
	// StoreDeadlineError is the error an answer path returns when a query
	// or batch outruns its context deadline (`pitract serve
	// -query-budget-ms`; HTTP 504): the work is abandoned and its late
	// result dropped.
	StoreDeadlineError = store.DeadlineError
	// StorePrepareError wraps a failed prepared-answerer build (a
	// scheme's Prepare failing on its Π) so serving layers can classify
	// it as a dataset-health failure; the message bytes are the
	// underlying error's, unchanged. Store.RetryPrepare clears it.
	StorePrepareError = store.PrepareError
	// StoreCorruptArtifactError wraps a snapshot or delta-log read that
	// failed integrity or decode checks — the trigger for quarantine
	// (the artifact is renamed aside with QuarantinePath and rebuilt
	// from source).
	StoreCorruptArtifactError = store.CorruptArtifactError
	// HealthBreaker is one dataset's health circuit breaker: windowed
	// failure counting, healthy → degraded → open transitions, and
	// exponential-backoff half-open probes (see HealthBreakerConfig and
	// StoreRegistry.Breaker).
	HealthBreaker = store.Breaker
	// HealthBreakerConfig tunes a breaker's failure window and backoff;
	// install per registry with StoreRegistry.SetBreakerConfig.
	HealthBreakerConfig = store.BreakerConfig
	// HealthBreakerDecision is one admission verdict from
	// HealthBreaker.Allow.
	HealthBreakerDecision = store.BreakerDecision
	// HealthState is a dataset's health: healthy, degraded, open, or
	// quarantined (rendered per dataset by GET /healthz).
	HealthState = store.HealthState
)

// Dataset health states (see HealthBreaker).
const (
	// HealthHealthy: the dataset is serving normally.
	HealthHealthy = store.HealthHealthy
	// HealthDegraded: recent failures; traffic prefers the declared
	// degraded-mode fallback when the scheme has one.
	HealthDegraded = store.HealthDegraded
	// HealthOpen: the breaker tripped; traffic is refused fast (503 +
	// Retry-After) except backoff-paced probes.
	HealthOpen = store.HealthOpen
	// HealthQuarantined: a persisted artifact failed integrity checks and
	// was renamed aside; the dataset was rebuilt from source.
	HealthQuarantined = store.HealthQuarantined
)

// Deadline-bounded answering and quarantine helpers.
var (
	// AnswerWithin answers one query against a dataset under a context
	// deadline: expiry abandons the in-flight answer (its worker's late
	// result is dropped) and returns a *StoreDeadlineError.
	AnswerWithin = store.AnswerWithin
	// AnswerBatchWithin is AnswerWithin for batches; it also reports how
	// many verdicts were served through the scheme's degraded fallback
	// when the budget ran low mid-batch.
	AnswerBatchWithin = store.AnswerBatchWithin
	// QuarantinePath maps an artifact path to its quarantine name (the
	// ".quarantine" suffix a corrupt snapshot or log is renamed to).
	QuarantinePath = store.QuarantinePath
)

var (
	// OpenStore returns a preprocessed store for (scheme, data), reloading
	// the snapshot at path when it matches (same scheme, same data digest)
	// and preprocessing + saving otherwise — the single-store face of the
	// preprocess-once contract.
	OpenStore = store.Open
	// NewStoreRegistry returns a registry persisting snapshots under dir
	// ("" = in-memory only).
	NewStoreRegistry = store.NewRegistry
	// SaveSnapshot writes a snapshot atomically.
	SaveSnapshot = store.Save
	// LoadSnapshot reads and validates a snapshot file.
	LoadSnapshot = store.Load
	// NewServer returns an HTTP server over a registry; a nil catalog
	// selects ServeCatalog.
	NewServer = server.New
	// ServeCatalog lists the schemes a server offers for registration,
	// keyed by scheme name.
	ServeCatalog = server.Catalog
)

// --- observability (internal/obs) -----------------------------------------------

type (
	// ObsRegistry holds metric families (counters, gauges, lock-free
	// latency histograms) and renders them as Prometheus text exposition —
	// the engine behind GET /metrics. Lookups are get-or-create and
	// idempotent.
	ObsRegistry = obs.Registry
	// ObsHistogram is a lock-free log-bucketed latency histogram
	// (128ns…~8.6s plus overflow); recording is a few atomic adds.
	ObsHistogram = obs.Histogram
	// ObsHistogramSnapshot is a mergeable point-in-time histogram copy with
	// mean and quantile estimation.
	ObsHistogramSnapshot = obs.HistogramSnapshot
	// ObsLabel is one metric label (key + value).
	ObsLabel = obs.Label
	// ServerBuildInfo identifies the serving binary in /v1/stats.
	ServerBuildInfo = server.BuildInfo
)

var (
	// ObsDefaultRegistry is the process-wide registry every serve-path
	// stage records into and GET /metrics renders.
	ObsDefaultRegistry = obs.Default
	// NewObsRegistry returns an empty metric registry (for embedding
	// pitract metrics into another exposition).
	NewObsRegistry = obs.NewRegistry
	// SetMetricsEnabled is the observability kill switch: disabled, the
	// instrumented paths skip the clock reads and atomic writes entirely
	// (experiment X8 measures the difference). Enabled by default.
	SetMetricsEnabled = obs.SetEnabled
	// MetricsEnabled reports whether metric recording is enabled.
	MetricsEnabled = obs.Enabled
	// CheckExposition validates Prometheus text exposition format — the
	// conformance checker the repository's own /metrics tests (and CI
	// smoke) run against every scrape.
	CheckExposition = obs.CheckExposition
)

// --- the answer cache (internal/cache) ------------------------------------------

type (
	// AnswerCache memoizes hot ⟨dataset, version, query⟩ verdicts in front
	// of the answering path: a sharded, byte-budgeted LRU with singleflight
	// coalescing (a thundering herd on one cold key runs the underlying
	// answer once). Maintenance invalidates for free — the dataset version
	// is part of every key, so a committed delta moves traffic to new keys
	// and stale entries age out. Wire it into a server with
	// Server.SetAnswerCache (the `pitract serve -cache-bytes` flag) or in
	// front of any Dataset with NewCachedDataset.
	AnswerCache = cache.Cache
	// AnswerCacheStats is a point-in-time snapshot of an AnswerCache's
	// hit/miss/coalesced/eviction counters and residency.
	AnswerCacheStats = cache.Stats
)

var (
	// NewAnswerCache returns an answer cache bounded by a byte budget.
	NewAnswerCache = cache.New
	// NewCachedDataset fronts one dataset (plain or sharded) with an
	// answer cache: Answer and AnswerBatch consult and fill the cache,
	// keyed at the admission-time maintenance version.
	NewCachedDataset = store.NewCachedDataset
)

// --- sharded stores (internal/shard) --------------------------------------------

type (
	// Dataset is the registry's answer-path interface: a plain Store or a
	// ShardedStore, served identically (see StoreRegistry.GetDataset and
	// the HTTP server's query paths).
	Dataset = store.Dataset
	// DeltaDataset is the registry's mutation seam: datasets that maintain
	// Π(D ⊕ ∆D) in place under StoreRegistry.ApplyDelta (and the server's
	// PATCH /v1/datasets/{id}).
	DeltaDataset = store.DeltaDataset
	// ShardedStore serves one dataset from n partitioned preprocessed
	// stores behind a single catalog entry, routing each query to its
	// owning shard or fanning out and merging verdicts.
	ShardedStore = shard.ShardedStore
	// Partitioner plans how element keys spread over shards (hash or
	// range).
	Partitioner = shard.Partitioner
	// ShardAssignment is a frozen key→shard mapping, persisted in the
	// shard manifest so restarts route exactly like the original process.
	ShardAssignment = shard.Assignment
	// Sharding is the per-scheme hook bundle (split, route, fan-out,
	// merge) that adapts one scheme to partitioned stores.
	Sharding = shard.Sharding
	// ShardManifest binds one sharded dataset's snapshot files together
	// with per-shard SHA-256 integrity.
	ShardManifest = shard.Manifest
)

// NewHashPartitioner spreads keys by 64-bit FNV-1a hash modulo the shard
// count — balanced for any distribution; range queries fan out.
func NewHashPartitioner() Partitioner { return shard.HashPartitioner{} }

// NewRangePartitioner cuts the sorted key space at quantile boundaries so
// each shard owns a contiguous, roughly equal-population key range and
// in-bucket range queries route to a single shard.
func NewRangePartitioner() Partitioner { return shard.RangePartitioner{} }

// BuildShardedStore cuts data into n parts, preprocesses each
// concurrently, and assembles a sharded store for the scheme (which must
// have a sharded form — see ShardingForScheme). Nothing is persisted; use
// RegisterSharded with a persistent registry for snapshots + manifest.
func BuildShardedStore(id string, scheme *Scheme, p Partitioner, n int, data []byte) (*ShardedStore, error) {
	sh := shard.ForScheme(scheme.Name())
	if sh == nil {
		return nil, fmt.Errorf("pitract: scheme %s has no sharded form (shardable: %v)",
			scheme.Name(), shard.ShardableSchemes())
	}
	return shard.Build(id, scheme, sh, p, n, data)
}

var (
	// RegisterSharded registers data as n partitioned stores behind one
	// registry catalog entry, with the same exactly-once build and
	// snapshot-reload contract as StoreRegistry.Register.
	RegisterSharded = shard.RegisterSharded
	// ShardingForScheme returns a scheme's sharded form, or nil when the
	// scheme has none (BDS visit orders and CVP gate tables are global
	// artifacts).
	ShardingForScheme = shard.ForScheme
	// ShardableSchemes lists the scheme names with sharded forms.
	ShardableSchemes = shard.ShardableSchemes
	// DeltaCapableSchemes lists the scheme names whose sharded form also
	// routes deltas (PATCH on a sharded dataset).
	DeltaCapableSchemes = shard.DeltaCapableSchemes
	// PartitionerByName resolves "hash"/"range" (the HTTP API's
	// ?partitioner values and the CLI's -partitioner flag).
	PartitionerByName = shard.PartitionerByName
	// LoadShardedStore reopens a persisted sharded dataset, verifying the
	// manifest and every shard snapshot's SHA-256; damage fails with a
	// clean error.
	LoadShardedStore = shard.LoadSharded
)

// --- the PRAM engine (internal/pram) -------------------------------------------

type (
	// PRAM is the deterministic CREW PRAM simulator behind the repository's
	// NC measurements. Built with NewPRAM; WithPRAMWorkers swaps in the
	// goroutine-parallel executor, which is observationally identical to
	// the sequential oracle (same memory images, rounds, and work) but uses
	// the host's cores.
	PRAM = pram.Machine
	// PRAMCost is (rounds, work) — parallel time and total activations.
	PRAMCost = pram.Cost
	// PRAMOption configures NewPRAM.
	PRAMOption = pram.Option
	// PRAMCtx is the per-processor view a kernel receives during a round.
	PRAMCtx = pram.Ctx
	// PRAMBoolMatrix is the dense Boolean matrix the closure schedule runs
	// on.
	PRAMBoolMatrix = pram.BoolMatrix
)

var (
	// NewPRAM returns a machine with the given number of memory cells.
	NewPRAM = pram.New
	// WithPRAMWorkers enables the goroutine-parallel executor (n <= 0
	// selects GOMAXPROCS workers).
	WithPRAMWorkers = pram.WithWorkers
	// WithPRAMConflictDetection enables CREW conflict checking.
	WithPRAMConflictDetection = pram.WithConflictDetection
	// NewPRAMBoolMatrix returns an n×n all-false matrix.
	NewPRAMBoolMatrix = pram.NewBoolMatrix
	// PRAMTransitiveClosure is the NC² closure schedule (Example 3).
	PRAMTransitiveClosure = pram.TransitiveClosure
	// PRAMBitonicSort is Batcher's O(log² n)-round sorting network.
	PRAMBitonicSort = pram.BitonicSort
)

// --- case-study schemes and query codecs (internal/schemes) -------------------

var (
	// PointSelectionScheme: Example 1 — sorted-key index, O(log|D|)
	// answering.
	PointSelectionScheme = schemes.PointSelectionScheme
	// PointSelectionScanScheme: the no-preprocessing baseline.
	PointSelectionScanScheme = schemes.PointSelectionScanScheme
	// RangeSelectionScheme: §4(1) range selection over the sorted keys.
	RangeSelectionScheme = schemes.RangeSelectionScheme
	// ListMembershipScheme: §4(2) sort + binary search.
	ListMembershipScheme = schemes.ListMembershipScheme
	// ReachabilityScheme: Example 3 — all-pairs closure matrix, O(1)
	// answering.
	ReachabilityScheme = schemes.ReachabilityScheme
	// ReachabilityBFSScheme: BFS-per-query baseline.
	ReachabilityBFSScheme = schemes.ReachabilityBFSScheme
	// ReachabilityLabelsScheme: succinct Π — a 2-hop labeling on the
	// query-preserving compression of the graph, verdict-identical to
	// ReachabilityScheme at a fraction of the artifact bytes.
	ReachabilityLabelsScheme = schemes.ReachabilityLabelsScheme
	// BDSScheme: Example 5 — visit-order preprocessing for breadth-depth
	// search.
	BDSScheme = schemes.BDSScheme
	// BDSNoPreprocessScheme: Figure 1's Υ′ — nothing preprocessed.
	BDSNoPreprocessScheme = schemes.BDSNoPreprocessScheme
	// CVPGateValueScheme: §6 — CVP made Π-tractable by refactorization.
	CVPGateValueScheme = schemes.CVPGateValueScheme
	// CVPNoPreprocessScheme: Theorem 9's Υ0 — preprocessing cannot help.
	CVPNoPreprocessScheme = schemes.CVPNoPreprocessScheme

	// SelectionLanguage is S1 (Example 3).
	SelectionLanguage = schemes.SelectionLanguage
	// RangeSelectionLanguage decides §4(1) range queries.
	RangeSelectionLanguage = schemes.RangeSelectionLanguage
	// ListMembershipLanguage is S(L1,Υ1) (§4(2)).
	ListMembershipLanguage = schemes.ListMembershipLanguage
	// ReachabilityLanguage is S2 (Example 3).
	ReachabilityLanguage = schemes.ReachabilityLanguage
	// BDSLanguage is S(BDS, Υ_BDS) (Example 4).
	BDSLanguage = schemes.BDSLanguage
	// BDSProblem is the BDS decision problem.
	BDSProblem = schemes.BDSProblem
	// BDSFactorization is Υ_BDS from Figure 1.
	BDSFactorization = schemes.BDSFactorization
	// CVPGateLanguage decides gate-value queries on CVP instances.
	CVPGateLanguage = schemes.CVPGateLanguage

	// PointQuery encodes a point-selection query value.
	PointQuery = schemes.PointQuery
	// RangeQuery encodes a range-selection query.
	RangeQuery = schemes.RangeQuery
	// NodePairQuery encodes a (u, v) node-pair query.
	NodePairQuery = schemes.NodePairQuery
	// GateQuery encodes a gate-value query.
	GateQuery = schemes.GateQuery
	// EncodeList serializes a list for the §4(2) problem.
	EncodeList = schemes.EncodeList
	// EncodeBits serializes a binary TM input.
	EncodeBits = schemes.EncodeBits
	// RelationFromKeys encodes a single-column relation from keys.
	RelationFromKeys = schemes.RelationFromKeys

	// TMProblem wraps a clocked Turing machine as a decision problem.
	TMProblem = schemes.TMProblem
	// TMToBDSReduction is the Theorem 5 reduction L(M) ≤NC_fa BDS.
	TMToBDSReduction = schemes.TMToBDSReduction
	// TMSchemeViaBDS is the Corollary 6 scheme: decide L(M) through BDS.
	TMSchemeViaBDS = schemes.TMSchemeViaBDS

	// RMQFuncScheme: §4(3) as a function scheme (sparse table, O(1)).
	RMQFuncScheme = schemes.RMQFuncScheme
	// RMQFuncLanguage is the RMQ reference function.
	RMQFuncLanguage = schemes.RMQFuncLanguage
	// LCAFuncScheme: §4(4) as a function scheme (all-pairs table, O(1)).
	LCAFuncScheme = schemes.LCAFuncScheme
	// LCAFuncLanguage is the DAG-LCA reference function.
	LCAFuncLanguage = schemes.LCAFuncLanguage
	// RangeQueryIJ encodes an (i, j) index-range query for RMQ.
	RangeQueryIJ = schemes.RangeQueryIJ
	// ViewRewritingScheme: §4(6) with the Definition 1 λ-rewriting.
	ViewRewritingScheme = schemes.ViewRewritingScheme
	// IncrementalPointSelection maintains the sorted-key file under
	// insertions (§1 incremental preprocessing).
	IncrementalPointSelection = schemes.IncrementalPointSelection
	// IncrementalRangeSelection maintains the range scheme's sorted-key
	// file with the same merge.
	IncrementalRangeSelection = schemes.IncrementalRangeSelection
	// IncrementalListMembership maintains the §4(2) sorted list under
	// element insertions.
	IncrementalListMembership = schemes.IncrementalListMembership
	// IncrementalReachability maintains the closure matrix under edge
	// insertions.
	IncrementalReachability = schemes.IncrementalReachability
	// IncrementalReachabilityBFS maintains the BFS baseline (Π = D, so
	// maintenance is appending the edge).
	IncrementalReachabilityBFS = schemes.IncrementalReachabilityBFS
	// IncrementalReachabilityLabels maintains the 2-hop labeling by
	// relabeling from the graph appendix on every committed edge delta.
	IncrementalReachabilityLabels = schemes.IncrementalReachabilityLabels
	// IncrementalForScheme resolves a scheme's incremental form by name —
	// the catalog StoreRegistry.ApplyDelta and the HTTP PATCH path route
	// through; nil for schemes with nothing maintainable.
	IncrementalForScheme = schemes.IncrementalForScheme
	// MaintainableSchemes lists the scheme names with incremental forms.
	MaintainableSchemes = schemes.MaintainableSchemes
	// KeysDelta encodes an insertion batch for IncrementalPointSelection.
	KeysDelta = schemes.KeysDelta
	// KeysDeleteDelta encodes a tombstone batch for the sorted-key
	// schemes: the listed keys are removed, and deleting an absent key
	// is an idempotent no-op.
	KeysDeleteDelta = schemes.KeysDeleteDelta
	// KeysUpsertDelta encodes an insert-if-absent batch for the
	// sorted-key schemes — safe to apply twice.
	KeysUpsertDelta = schemes.KeysUpsertDelta
	// EdgeDelta encodes an edge insertion for IncrementalReachability.
	EdgeDelta = schemes.EdgeDelta
	// EdgeDeleteDelta encodes an edge retraction for
	// IncrementalReachability; retracting an edge that was never
	// asserted is an error, and the closure is maintained decrementally.
	EdgeDeleteDelta = schemes.EdgeDeleteDelta
	// EdgeUpsertDelta encodes an insert-if-absent edge for
	// IncrementalReachability.
	EdgeUpsertDelta = schemes.EdgeUpsertDelta
)

// --- top-k with early termination (§8(5), internal/topk) ------------------------

type (
	// TopKDataset is n objects × m attributes of non-negative scores.
	TopKDataset = topk.Dataset
	// TopKIndex is the Threshold Algorithm preprocessing output.
	TopKIndex = topk.Index
	// TopKResult is one ranked answer.
	TopKResult = topk.Result
	// TopKStats counts sequential and random accesses per query.
	TopKStats = topk.Stats
)

var (
	// NewTopKIndex sorts the per-attribute lists (the TA preprocessing).
	NewTopKIndex = topk.NewIndex
	// TopKScan is the full-scan baseline.
	TopKScan = topk.Scan
	// GenZipfDataset generates a seeded skewed dataset.
	GenZipfDataset = topk.GenZipf
)

// --- circuits (internal/circuit) -------------------------------------------------

// CVPInstance is a full Circuit Value Problem instance (circuit ᾱ, inputs,
// designated output).
type CVPInstance = circuit.Instance

// CircuitGenConfig parameterizes random circuit generation.
type CircuitGenConfig = circuit.GenConfig

// Circuit is a topologically ordered Boolean circuit.
type Circuit = circuit.Circuit

var (
	// GenerateCircuit builds a seeded random circuit.
	GenerateCircuit = circuit.Generate
	// RandomCircuitInputs returns a seeded input assignment.
	RandomCircuitInputs = circuit.RandomInputs
	// EncodeCVPInstance serializes a CVP instance.
	EncodeCVPInstance = circuit.EncodeInstance
	// DecodeCVPInstance parses a serialized CVP instance.
	DecodeCVPInstance = circuit.DecodeInstance
	// ReduceCVPToBDS maps a CVP instance to a BDS instance with the same
	// answer (the Theorem 5 reference reduction; see DESIGN.md).
	ReduceCVPToBDS = circuit.ReduceInstanceToBDS
	// OptimizeCircuit folds constants and drops dead gates without
	// changing the circuit's function.
	OptimizeCircuit = circuit.Optimize
)

// --- sample machines (internal/tm) --------------------------------------------

// ClockedMachine couples a deterministic Turing machine with its polynomial
// step bound.
type ClockedMachine = tm.Clocked

var (
	// ParityMachine accepts inputs with an even number of 1 bits.
	ParityMachine = tm.Parity
	// ContainsOneOneMachine accepts inputs containing "11".
	ContainsOneOneMachine = tm.ContainsOneOne
	// DivisibleByThreeMachine accepts binary multiples of three.
	DivisibleByThreeMachine = tm.DivisibleByThree
	// PalindromeMachine accepts binary palindromes (quadratic time).
	PalindromeMachine = tm.Palindrome
	// ZeroNOneNMachine accepts 0^a 1^a (quadratic time).
	ZeroNOneNMachine = tm.ZeroNOneN
	// SampleMachines returns all of the above.
	SampleMachines = tm.SampleMachines
)

// --- substrates used by the examples -------------------------------------------

type (
	// Graph is the shared graph substrate.
	Graph = graph.Graph
	// Relation is the relational substrate.
	Relation = relation.Relation
	// CompressedGraph is a query-preserving compression for reachability
	// (§4(5)).
	CompressedGraph = compress.Compressed
	// IncrementalReach is an incrementally maintained reachability index
	// (§4(7)).
	IncrementalReach = inc.Index
	// IncrementalLedger is the |CHANGED|-based cost accounting.
	IncrementalLedger = inc.Ledger
	// ViewSet is a set of materialized views (§4(6)).
	ViewSet = views.Set
	// ViewDef defines one range view.
	ViewDef = views.Def
)

var (
	// NewGraph returns an empty graph.
	NewGraph = graph.New
	// RandomConnectedUndirected generates a seeded connected graph.
	RandomConnectedUndirected = graph.RandomConnectedUndirected
	// RandomDirected generates a seeded directed graph.
	RandomDirected = graph.RandomDirected
	// CommunityGraph generates a social-network-shaped directed graph.
	CommunityGraph = graph.CommunityGraph
	// CompressGraph builds the §4(5) compression.
	CompressGraph = compress.Compress
	// NewIncrementalReach builds the §4(7) incremental index.
	NewIncrementalReach = inc.New
	// MaterializeViews builds the §4(6) view set.
	MaterializeViews = views.Materialize
	// EvenPartition returns k contiguous range views.
	EvenPartition = views.EvenPartition
	// GenerateRelation generates a seeded synthetic relation.
	GenerateRelation = relation.Generate
	// IntValue wraps an int64 as a relation value.
	IntValue = relation.Int
)

// RelationGenConfig parameterizes GenerateRelation.
type RelationGenConfig = relation.GenConfig

// --- experiments ------------------------------------------------------------------

type (
	// Experiment is one reproducible paper artifact.
	Experiment = harness.Experiment
	// ResultTable is a rendered experiment result.
	ResultTable = harness.Table
	// ExperimentScale selects Quick or Full workload sizes.
	ExperimentScale = harness.Scale
)

// Experiment scales.
const (
	// ScaleQuick finishes the whole suite in seconds.
	ScaleQuick = harness.Quick
	// ScaleFull uses the EXPERIMENTS.md sizes.
	ScaleFull = harness.Full
)

// Experiments lists every experiment (E1, F1, F2, E3, C1…C9, T5, L2, T9,
// P10, A1…A3) in presentation order.
func Experiments() []Experiment { return harness.All() }

// RunExperiment runs one experiment by id and renders its table to w.
func RunExperiment(w io.Writer, id string, scale ExperimentScale) error {
	e, ok := harness.Find(id)
	if !ok {
		return &UnknownExperimentError{ID: id}
	}
	tbl, err := e.Run(scale)
	if err != nil {
		return err
	}
	tbl.Render(w)
	return nil
}

// UnknownExperimentError reports a bad experiment id.
type UnknownExperimentError struct {
	// ID is the id that was not found.
	ID string
}

// Error implements error.
func (e *UnknownExperimentError) Error() string {
	return "pitract: unknown experiment " + e.ID + " (use Experiments() for the list)"
}
