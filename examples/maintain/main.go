// Maintain: incremental serving end-to-end. The paper's §1 justification
// (3) argues preprocessing pays off because Π(D) can be *maintained* under
// updates instead of recomputed; this example runs that loop against the
// live HTTP API: register a dataset (one PTIME Preprocess), watch a query
// answer false, PATCH a delta (Π(D ⊕ ∆D) maintained in place, snapshot
// rewritten atomically), watch the same query answer true at a bumped
// version — then restart the server over the same data directory and show
// the maintained Π reload with zero Preprocess calls.
//
//	go run ./examples/maintain
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"pitract"
)

func main() {
	dir, err := os.MkdirTemp("", "pitract-maintain-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// --- lifetime 1: register, patch, query.
	base, shutdown := serve(dir)
	data := pitract.RelationFromKeys([]int64{2, 4, 6, 8})

	var info struct {
		Loaded  bool   `json:"loaded"`
		Version uint64 `json:"version"`
	}
	must(call("POST", base+"/v1/datasets", map[string]interface{}{
		"id": "d", "scheme": "point-selection/sorted-keys", "data": data,
	}, &info))
	fmt.Printf("registered: loaded=%v version=%d\n", info.Loaded, info.Version)

	var q struct {
		Answer  bool   `json:"answer"`
		Version uint64 `json:"version"`
	}
	must(call("POST", base+"/v1/query", map[string]interface{}{
		"dataset": "d", "query": pitract.PointQuery(9),
	}, &q))
	fmt.Printf("is 9 selected?  %v (version %d)\n", q.Answer, q.Version)

	// PATCH the delta: insert keys 9 and 11. Π is maintained by the
	// sorted-file merge — O(|D| + |∆D|) — not re-sorted from scratch.
	must(call("PATCH", base+"/v1/datasets/d", map[string]interface{}{
		"deltas": [][]byte{pitract.KeysDelta([]int64{9, 11})},
	}, &info))
	fmt.Printf("patched: version=%d\n", info.Version)

	must(call("POST", base+"/v1/query", map[string]interface{}{
		"dataset": "d", "query": pitract.PointQuery(9),
	}, &q))
	fmt.Printf("is 9 selected?  %v (version %d)\n", q.Answer, q.Version)
	shutdown()

	// --- lifetime 2: restart over the same directory. The maintained
	// snapshot (version 1) reloads; nothing is re-preprocessed.
	base, shutdown = serve(dir)
	defer shutdown()
	must(call("POST", base+"/v1/datasets", map[string]interface{}{
		"id": "d", "scheme": "point-selection/sorted-keys", "data": data,
	}, &info))
	var stats struct {
		PreprocessCalls int64 `json:"preprocess_calls"`
		SnapshotLoads   int64 `json:"snapshot_loads"`
	}
	must(call("GET", base+"/v1/stats", nil, &stats))
	fmt.Printf("restart: loaded=%v version=%d preprocess_calls=%d snapshot_loads=%d\n",
		info.Loaded, info.Version, stats.PreprocessCalls, stats.SnapshotLoads)
	must(call("POST", base+"/v1/query", map[string]interface{}{
		"dataset": "d", "query": pitract.PointQuery(9),
	}, &q))
	fmt.Printf("is 9 selected?  %v (version %d) — the delta survived the restart\n", q.Answer, q.Version)
}

// serve starts a pitract server over dir on a random port, returning its
// base URL and a shutdown function.
func serve(dir string) (string, func()) {
	srv := pitract.NewServer(pitract.NewStoreRegistry(dir), nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Fatal(err)
		}
		if err := <-done; err != nil {
			log.Fatal(err)
		}
	}
}

// call issues one JSON request and decodes the JSON response.
func call(method, url string, body, out interface{}) error {
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("%s %s: status %d: %s", method, url, resp.StatusCode, e.Error)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
