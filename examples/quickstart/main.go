// Quickstart: the paper's Example 1 in twenty lines — make point-selection
// queries tractable on a big relation by preprocessing.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"pitract"
)

func main() {
	// A synthetic relation D: one million rows of (key, payload).
	rel := pitract.GenerateRelation(pitract.RelationGenConfig{Rows: 1_000_000, Seed: 42})
	d := rel.Encode()
	fmt.Printf("database: %d rows, %d bytes encoded\n", rel.Len(), len(d))

	// The Π-tractable scheme for the query class Q1 (Definition 1):
	// preprocess once in PTIME...
	scheme := pitract.PointSelectionScheme()
	start := time.Now()
	prep, err := scheme.Preprocess(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("preprocessed in %v (%d bytes)\n", time.Since(start), len(prep))

	// ...then answer any number of queries in O(log |D|).
	start = time.Now()
	queries := 10_000
	hits := 0
	for c := int64(0); c < int64(queries); c++ {
		ok, err := scheme.Answer(prep, pitract.PointQuery(c*17))
		if err != nil {
			log.Fatal(err)
		}
		if ok {
			hits++
		}
	}
	perQuery := time.Since(start) / time.Duration(queries)
	fmt.Printf("%d queries, %d hits, %v per query\n", queries, hits, perQuery)

	// Contrast with the no-preprocessing baseline on a few queries.
	scan := pitract.PointSelectionScanScheme()
	start = time.Now()
	for c := int64(0); c < 3; c++ {
		if _, err := scan.Answer(d, pitract.PointQuery(c*17)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("baseline scan: %v per query — the Example 1 gap\n", time.Since(start)/3)
}
