// Package examples holds runnable programs, one per subdirectory; this
// test-only package smoke-tests each of them: build it, run it with a
// deadline, and assert a clean exit. The examples are the documented entry
// path into the library, so a broken one is a broken front door.
package examples

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// perExampleDeadline bounds one example's build+run. The heaviest example
// (quickstart, one million rows) finishes in a few seconds; the deadline
// leaves generous headroom for cold build caches and slow CI machines.
const perExampleDeadline = 3 * time.Minute

func TestExamplesSmoke(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go binary not on PATH: %v", err)
	}
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		if _, err := os.Stat(filepath.Join(name, "main.go")); err != nil {
			continue
		}
		ran++
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), perExampleDeadline)
			defer cancel()
			cmd := exec.CommandContext(ctx, goBin, "run", "./examples/"+name)
			cmd.Dir = ".." // module root, where go.mod lives
			out, err := cmd.CombinedOutput()
			if ctx.Err() != nil {
				t.Fatalf("example %s exceeded its %v deadline\noutput:\n%s", name, perExampleDeadline, out)
			}
			if err != nil {
				t.Fatalf("example %s exited non-zero: %v\noutput:\n%s", name, err, out)
			}
			if len(strings.TrimSpace(string(out))) == 0 {
				t.Fatalf("example %s produced no output", name)
			}
		})
	}
	if ran == 0 {
		t.Fatal("no examples found to smoke-test")
	}
}
