// The completeness chain, end to end: take a PTIME language (binary
// palindromes, decided by a Turing machine), compile its decision procedure
// into a Cook–Levin circuit, reduce to BDS — the ΠTP-complete problem — and
// decide the language through the transported Π-scheme (Theorem 5 and
// Corollary 6 of the paper, running).
//
//	go run ./examples/circuits
package main

import (
	"fmt"
	"log"

	"pitract"
)

func main() {
	cm := pitract.PalindromeMachine()
	fmt.Printf("machine: %q with clock T(n) = (n+2)(n+3)\n", cm.M.Name)

	// Corollary 6 in one call: a Π-scheme for L(machine) obtained by
	// transporting BDS's scheme along the L(M) → CVP → BDS reduction.
	scheme := pitract.TMSchemeViaBDS(cm)
	fmt.Printf("scheme: %s\n", scheme.SchemeName)

	inputs := [][]bool{
		{},
		{true},
		{true, false, true},
		{true, false, false},
		{false, true, true, false},
		{false, true, true, true},
	}
	for _, in := range inputs {
		x := pitract.EncodeBits(in)
		// The chain underneath: compile → reduce → preprocess the BDS
		// image → answer with two position reads.
		prep, err := scheme.Preprocess(x)
		if err != nil {
			log.Fatal(err)
		}
		got, err := scheme.Answer(prep, x)
		if err != nil {
			log.Fatal(err)
		}
		want := cm.M.Run(in, cm.Bound(len(in))).Accepted
		status := "✓"
		if got != want {
			status = "✗ DISAGREES"
		}
		fmt.Printf("  input %v → chain says %5v, simulator says %5v %s\n", bits(in), got, want, status)
		if got != want {
			log.Fatal("chain broken")
		}
	}

	// Peek inside: the reduction artifacts for one input.
	red := pitract.TMToBDSReduction(cm)
	x := pitract.EncodeBits([]bool{true, false, true})
	gBytes, err := red.Map.Alpha(x)
	if err != nil {
		log.Fatal(err)
	}
	q, err := red.Map.Beta(x)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreduction image for 101: BDS graph %d bytes, query %v (α, β per Definition 4)\n",
		len(gBytes), q)
	fmt.Println("every PTIME query class admits such a chain — Corollary 6")
}

func bits(in []bool) string {
	if len(in) == 0 {
		return "ε"
	}
	s := ""
	for _, b := range in {
		if b {
			s += "1"
		} else {
			s += "0"
		}
	}
	return s
}
