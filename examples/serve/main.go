// Serve: the preprocess-once/answer-many asymmetry on the network. This
// example plays both roles in one process: it starts the pitract HTTP
// server (the same subsystem behind `pitract serve`), then acts as a
// client — registering a social-graph dataset once (paying the PTIME
// preprocessing, persisted as a checksummed snapshot) and answering
// reachability queries over HTTP, singly and in batches.
//
//	go run ./examples/serve
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"pitract"
)

func main() {
	// --- server side: a registry with snapshot persistence, served on a
	// random local port.
	dir, err := os.MkdirTemp("", "pitract-serve-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	reg := pitract.NewStoreRegistry(dir)
	srv := pitract.NewServer(reg, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s (snapshots in %s)\n", base, dir)

	// --- client side: plain HTTP + JSON from here on.
	// 25 communities of 80 users each: 2000 vertices.
	g := pitract.CommunityGraph(25, 80, 60, 42)
	post(base+"/v1/datasets", map[string]interface{}{
		"id":     "social",
		"scheme": "reachability/closure-matrix",
		"data":   g.Encode(), // []byte travels base64-encoded
	}, nil)
	fmt.Printf("registered %d-vertex social graph — preprocessed once, server-side\n", 2000)

	// One query: is user 7 connected to user 1900?
	var one struct {
		Answer bool `json:"answer"`
	}
	post(base+"/v1/query", map[string]interface{}{
		"dataset": "social",
		"query":   pitract.NodePairQuery(7, 1900),
	}, &one)
	fmt.Printf("reach(7 → 1900) = %v\n", one.Answer)

	// A batch through the server's AnswerBatch worker pool.
	queries := make([][]byte, 500)
	for i := range queries {
		queries[i] = pitract.NodePairQuery(i%2000, (i*37)%2000)
	}
	var batch struct {
		Answers []bool `json:"answers"`
	}
	start := time.Now()
	post(base+"/v1/query/batch", map[string]interface{}{
		"dataset": "social",
		"queries": queries,
	}, &batch)
	reachable := 0
	for _, a := range batch.Answers {
		if a {
			reachable++
		}
	}
	fmt.Printf("batch of %d queries in %v: %d reachable pairs\n",
		len(queries), time.Since(start).Round(time.Microsecond), reachable)

	// The serving counters.
	var stats struct {
		Datasets        int   `json:"datasets"`
		PreprocessCalls int64 `json:"preprocess_calls"`
		Queries         int64 `json:"queries"`
	}
	get(base+"/v1/stats", &stats)
	fmt.Printf("stats: %d dataset(s), %d Preprocess call(s), %d queries served\n",
		stats.Datasets, stats.PreprocessCalls, stats.Queries)

	// Graceful shutdown: drain in-flight requests, then exit.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	fmt.Println("server drained and stopped")
}

// post sends v as JSON and decodes the response into out (skipped if nil).
func post(url string, v, out interface{}) {
	body, err := json.Marshal(v)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("%s: status %d: %s", url, resp.StatusCode, e.Error)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			log.Fatal(err)
		}
	}
}

// get fetches url and decodes the JSON response into out.
func get(url string, out interface{}) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
