// Views and bounded incremental evaluation (§4(6) and §4(7)): answer point
// queries from materialized views without touching the base relation, and
// maintain a reachability index under edge insertions at a cost tracking
// |CHANGED| rather than |D|.
//
//	go run ./examples/incremental
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"pitract"
)

func main() {
	// --- §4(6): query answering using views -----------------------------
	rel := pitract.GenerateRelation(pitract.RelationGenConfig{Rows: 500_000, Seed: 3, KeyMax: 500_000})
	set, err := pitract.MaterializeViews(rel, pitract.EvenPartition("key", 0, 499_999, 16))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("views: %d partitions materialized, |V(D)| = %d rows\n",
		len(set.Views()), set.TotalRows())

	start := time.Now()
	const queries = 50_000
	hits := 0
	for c := int64(0); c < queries; c++ {
		ok, err := set.AnswerPoint("key", c*11%500_000)
		if err != nil {
			log.Fatal(err)
		}
		if ok {
			hits++
		}
	}
	fmt.Printf("answered %d point queries from views in %v (%d hits), base untouched\n",
		queries, time.Since(start), hits)

	// --- §4(7): bounded incremental reachability -------------------------
	g := pitract.RandomDirected(2000, 3000, 11)
	idx, err := pitract.NewIncrementalReach(g)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		u, v := rng.Intn(2000), rng.Intn(2000)
		if u == v {
			continue
		}
		if err := idx.InsertEdge(u, v); err != nil {
			log.Fatal(err)
		}
	}
	led := idx.Ledger()
	fmt.Printf("\nincremental maintenance over %d inserts:\n", led.Updates)
	fmt.Printf("  |CHANGED| = |∆D| + |∆O| = %d\n", led.Changed())
	fmt.Printf("  maintenance work          = %d words\n", led.WorkWords)
	fmt.Printf("  recompute-per-insert cost = %d words\n", idx.RecomputeCostWords()*int64(led.Updates))
	fmt.Printf("  → cost tracks CHANGED, not |D| (Ramalingam–Reps boundedness)\n")

	if err := idx.VerifyAgainstRecompute(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("index verified against a from-scratch recomputation ✓")
}
