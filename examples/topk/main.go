// Top-k with early termination (§8(5) of the paper): preprocess
// per-attribute sorted lists once, then answer top-k queries by Fagin's
// Threshold Algorithm, reading a vanishing fraction of the data.
//
//	go run ./examples/topk
package main

import (
	"fmt"
	"log"
	"time"

	"pitract"
)

func main() {
	const n, m = 500_000, 3
	data := pitract.GenZipfDataset(n, m, 11)
	fmt.Printf("dataset: %d objects × %d attributes (zipf scores)\n", n, m)

	start := time.Now()
	idx, err := pitract.NewTopKIndex(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("preprocessed %d sorted lists in %v\n", m, time.Since(start))

	start = time.Now()
	results, stats, err := idx.TopK(5)
	if err != nil {
		log.Fatal(err)
	}
	taTime := time.Since(start)
	fmt.Printf("\ntop-5 by threshold algorithm (%v):\n", taTime)
	for rank, r := range results {
		fmt.Printf("  #%d object %6d score %.2f\n", rank+1, r.Object, r.Score)
	}
	fmt.Printf("accesses: %d sequential + %d random — %.3f%% of the lists\n",
		stats.Sequential, stats.Random, 100*float64(stats.Sequential)/float64(n*m))

	start = time.Now()
	baseline, err := pitract.TopKScan(data, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull scan baseline: %v (%.0fx slower)\n",
		time.Since(start), float64(time.Since(start))/float64(taTime))
	for i := range results {
		if results[i].Score != baseline[i].Score {
			log.Fatal("TA and scan disagree")
		}
	}
	fmt.Println("TA verified against the scan ✓ — Q(D) answered without computing all of Q(D)")
}
