// Social-graph reachability: the paper's Example 3 and §4(5) on a
// community-structured directed graph — precompute a closure for O(1)
// answers, then compress the graph query-preservingly and answer from the
// compressed structure instead.
//
//	go run ./examples/socialgraph
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"pitract"
)

func main() {
	// A "social network": 40 dense communities of 50 members with sparse
	// cross-community follows.
	g := pitract.CommunityGraph(40, 50, 120, 7)
	fmt.Printf("graph: %d vertices, %d edges\n", g.N(), g.M())

	// Π-tractable reachability (Example 3): precompute the closure matrix.
	scheme := pitract.ReachabilityScheme()
	d := g.Encode()
	start := time.Now()
	prep, err := scheme.Preprocess(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("closure matrix built in %v (%d bytes)\n", time.Since(start), len(prep))

	rng := rand.New(rand.NewSource(1))
	start = time.Now()
	reachable := 0
	const queries = 100_000
	for i := 0; i < queries; i++ {
		ok, err := scheme.Answer(prep, pitract.NodePairQuery(rng.Intn(g.N()), rng.Intn(g.N())))
		if err != nil {
			log.Fatal(err)
		}
		if ok {
			reachable++
		}
	}
	fmt.Printf("%d queries in %v (%.0f%% reachable)\n",
		queries, time.Since(start), 100*float64(reachable)/queries)

	// §4(5): query-preserving compression — communities collapse.
	start = time.Now()
	c, err := pitract.CompressGraph(g)
	if err != nil {
		log.Fatal(err)
	}
	vr, er := c.Ratio(g)
	fmt.Printf("compressed in %v: %d → %d vertices (ratio %.3f), %d → %d edges (ratio %.3f)\n",
		time.Since(start), g.N(), c.Dc.N(), vr, g.M(), c.Dc.M(), er)

	// Same answers, smaller structure.
	rng = rand.New(rand.NewSource(1))
	mismatches := 0
	for i := 0; i < 10_000; i++ {
		u, v := rng.Intn(g.N()), rng.Intn(g.N())
		a, err := c.Reach(u, v)
		if err != nil {
			log.Fatal(err)
		}
		b, err := scheme.Answer(prep, pitract.NodePairQuery(u, v))
		if err != nil {
			log.Fatal(err)
		}
		if a != b {
			mismatches++
		}
	}
	fmt.Printf("compressed vs closure answers: %d mismatches on 10,000 queries\n", mismatches)
}
