package pitract_test

// Documentation verification. docs/ARCHITECTURE.md points into the code
// and docs/API.md quotes wire examples; both claims are cheap to break
// silently, so these tests pin them: every repository path the
// architecture doc references must exist, and every API example must be
// reproduced character-for-character by a live test server.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"testing"
	"time"

	"pitract"
)

// repoPathPattern matches repository-relative code pointers in prose:
// package directories and files under internal/, cmd/, examples/, docs/,
// plus the root facade and this test file.
var repoPathPattern = regexp.MustCompile(`(?:internal|cmd|examples|docs)/[A-Za-z0-9_./-]+[A-Za-z0-9_-]|pitract\.go|docs_test\.go|README\.md|ROADMAP\.md`)

// TestArchitectureDocPathsExist keeps docs/ARCHITECTURE.md's code
// pointers honest: every referenced path must exist in the repository.
func TestArchitectureDocPathsExist(t *testing.T) {
	for _, docFile := range []string{"docs/ARCHITECTURE.md", "docs/API.md", "README.md"} {
		doc, err := os.ReadFile(docFile)
		if err != nil {
			t.Fatalf("%s missing: %v", docFile, err)
		}
		refs := repoPathPattern.FindAllString(string(doc), -1)
		if len(refs) == 0 {
			t.Fatalf("%s references no code paths — the pattern or the doc is broken", docFile)
		}
		seen := map[string]bool{}
		for _, ref := range refs {
			if seen[ref] {
				continue
			}
			seen[ref] = true
			if _, err := os.Stat(ref); err != nil {
				t.Errorf("%s references %q, which does not exist", docFile, ref)
			}
		}
	}
}

// apiExample is one request/response pair quoted in docs/API.md.
type apiExample struct {
	name       string
	method     string
	path       string
	reqBody    string // also asserted to appear verbatim in the doc
	wantStatus int
	wantBody   string // exact response body; also asserted in the doc
}

// apiExamples mirrors docs/API.md example for example; changing either
// side without the other fails TestAPIDocMatchesServer.
var apiExamples = []apiExample{
	{
		name:       "register",
		method:     http.MethodPost,
		path:       "/v1/datasets",
		reqBody:    `{"id":"m","scheme":"list-membership/sorted","data":"AwIEBg=="}`,
		wantStatus: http.StatusOK,
		wantBody:   `{"id":"m","scheme":"list-membership/sorted","prep_bytes":24,"loaded":false,"shards":1,"version":0}`,
	},
	{
		name:       "register-sharded",
		method:     http.MethodPost,
		path:       "/v1/datasets?shards=2&partitioner=hash",
		reqBody:    `{"id":"m2","scheme":"list-membership/sorted","data":"AwIEBg=="}`,
		wantStatus: http.StatusOK,
		wantBody:   `{"id":"m2","scheme":"list-membership/sorted","prep_bytes":24,"loaded":false,"shards":2,"version":0}`,
	},
	{
		name:       "register-hostile-409",
		method:     http.MethodPost,
		path:       "/v1/datasets",
		reqBody:    `{"id":"bad","scheme":"reachability/closure-matrix","data":"////"}`,
		wantStatus: http.StatusConflict,
		wantBody:   `{"error":"store: register \"bad\": preprocess (reachability/closure-matrix): graph: corrupt varint at offset 0"}`,
	},
	{
		name:       "healthz",
		method:     http.MethodGet,
		path:       "/healthz",
		wantStatus: http.StatusOK,
		wantBody:   `{"datasets":2,"health":{"m":"healthy","m2":"healthy"},"status":"ok"}`,
	},
	{
		// The pre-breaker liveness shape, kept for probes that pin bytes.
		name:       "healthz-compat",
		method:     http.MethodGet,
		path:       "/healthz?verbose=0",
		wantStatus: http.StatusOK,
		wantBody:   `{"datasets":2,"status":"ok"}`,
	},
	{
		name:       "list",
		method:     http.MethodGet,
		path:       "/v1/datasets",
		wantStatus: http.StatusOK,
		wantBody:   `{"datasets":[{"id":"m","scheme":"list-membership/sorted","prep_bytes":24,"loaded":false,"shards":1,"version":0},{"id":"m2","scheme":"list-membership/sorted","prep_bytes":24,"loaded":false,"shards":2,"version":0}]}`,
	},
	{
		name:       "query",
		method:     http.MethodPost,
		path:       "/v1/query",
		reqBody:    `{"dataset":"m","query":"goCAgICAgICAAQ=="}`,
		wantStatus: http.StatusOK,
		wantBody:   `{"answer":true,"version":0}`,
	},
	{
		name:       "query-before-patch",
		method:     http.MethodPost,
		path:       "/v1/query",
		reqBody:    `{"dataset":"m","query":"iYCAgICAgICAAQ=="}`,
		wantStatus: http.StatusOK,
		wantBody:   `{"answer":false,"version":0}`,
	},
	{
		name:       "patch",
		method:     http.MethodPatch,
		path:       "/v1/datasets/m",
		reqBody:    `{"deltas":["ARI="]}`,
		wantStatus: http.StatusOK,
		wantBody:   `{"id":"m","scheme":"list-membership/sorted","prep_bytes":32,"loaded":false,"shards":1,"version":1}`,
	},
	{
		name:       "query-after-patch",
		method:     http.MethodPost,
		path:       "/v1/query",
		reqBody:    `{"dataset":"m","query":"iYCAgICAgICAAQ=="}`,
		wantStatus: http.StatusOK,
		wantBody:   `{"answer":true,"version":1}`,
	},
	{
		// The identical query again: with the answer cache enabled this is
		// served as a ⟨dataset, version, query⟩ hit — same bytes on the
		// wire, and the /v1/stats check below sees exactly one cache hit.
		name:       "query-repeat-cached",
		method:     http.MethodPost,
		path:       "/v1/query",
		reqBody:    `{"dataset":"m","query":"iYCAgICAgICAAQ=="}`,
		wantStatus: http.StatusOK,
		wantBody:   `{"answer":true,"version":1}`,
	},
	{
		name:       "get-dataset",
		method:     http.MethodGet,
		path:       "/v1/datasets/m",
		wantStatus: http.StatusOK,
		wantBody:   `{"id":"m","scheme":"list-membership/sorted","prep_bytes":32,"loaded":false,"shards":1,"version":1}`,
	},
	{
		name:       "patch-delete",
		method:     http.MethodPatch,
		path:       "/v1/datasets/m",
		reqBody:    `{"deltas":["////AAEBEg=="]}`,
		wantStatus: http.StatusOK,
		wantBody:   `{"id":"m","scheme":"list-membership/sorted","prep_bytes":24,"loaded":false,"shards":1,"version":2}`,
	},
	{
		name:       "query-after-delete",
		method:     http.MethodPost,
		path:       "/v1/query",
		reqBody:    `{"dataset":"m","query":"iYCAgICAgICAAQ=="}`,
		wantStatus: http.StatusOK,
		wantBody:   `{"answer":false,"version":2}`,
	},
	{
		name:       "patch-upsert",
		method:     http.MethodPatch,
		path:       "/v1/datasets/m",
		reqBody:    `{"deltas":["////AAIBEg=="]}`,
		wantStatus: http.StatusOK,
		wantBody:   `{"id":"m","scheme":"list-membership/sorted","prep_bytes":32,"loaded":false,"shards":1,"version":3}`,
	},
	{
		name:       "patch-hostile-409",
		method:     http.MethodPatch,
		path:       "/v1/datasets/m",
		reqBody:    `{"deltas":["////"]}`,
		wantStatus: http.StatusConflict,
		wantBody:   `{"error":"store: apply delta to \"m\": store: delta 0: schemes: corrupt list header (nothing applied)"}`,
	},
	{
		name:       "patch-unknown-404",
		method:     http.MethodPatch,
		path:       "/v1/datasets/ghost",
		reqBody:    `{"deltas":["ARI="]}`,
		wantStatus: http.StatusNotFound,
		wantBody:   `{"error":"dataset \"ghost\" not registered"}`,
	},
	{
		name:       "batch",
		method:     http.MethodPost,
		path:       "/v1/query/batch",
		reqBody:    `{"dataset":"m2","queries":["goCAgICAgICAAQ==","iYCAgICAgICAAQ=="],"parallelism":2}`,
		wantStatus: http.StatusOK,
		wantBody:   `{"answers":[true,false],"version":0}`,
	},
}

// TestAPIDocMatchesServer replays every docs/API.md example against a
// live httptest server: the documented request bodies must appear in the
// doc verbatim, and the server's responses must match the documented
// bodies and status codes exactly. /v1/stats is verified structurally
// (its counters carry timings).
func TestAPIDocMatchesServer(t *testing.T) {
	docBytes, err := os.ReadFile("docs/API.md")
	if err != nil {
		t.Fatalf("docs/API.md missing: %v", err)
	}
	doc := string(docBytes)

	srv := pitract.NewServer(pitract.NewStoreRegistry(""), nil)
	// The cache is on, as in the documented serve invocation
	// (-cache-bytes), so the stats check covers the cache counters.
	srv.SetAnswerCache(pitract.NewAnswerCache(1 << 20))
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	for _, ex := range apiExamples {
		t.Run(ex.name, func(t *testing.T) {
			if ex.reqBody != "" && !strings.Contains(doc, ex.reqBody) {
				t.Errorf("docs/API.md does not contain the documented request body %s", ex.reqBody)
			}
			if !strings.Contains(doc, ex.wantBody) {
				t.Errorf("docs/API.md does not contain the documented response body %s", ex.wantBody)
			}
			req, err := http.NewRequest(ex.method, ts.URL+ex.path, strings.NewReader(ex.reqBody))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := client.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(resp.Body); err != nil {
				t.Fatal(err)
			}
			body := strings.TrimSpace(buf.String())
			if resp.StatusCode != ex.wantStatus {
				t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, ex.wantStatus, body)
			}
			if body != ex.wantBody {
				t.Fatalf("live response diverged from docs/API.md:\n got: %s\nwant: %s", body, ex.wantBody)
			}
		})
	}

	// /v1/stats: counters carry latencies, so pin the shape and the
	// deterministic values instead of bytes.
	resp, err := client.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	rawStats, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Datasets        int     `json:"datasets"`
		PreprocessCalls int64   `json:"preprocess_calls"`
		SnapshotLoads   int64   `json:"snapshot_loads"`
		Queries         int64   `json:"queries"`
		DeltasApplied   int64   `json:"deltas_applied"`
		DeltasDeleted   int64   `json:"deltas_deleted"`
		LogReplays      int64   `json:"log_replays"`
		MaintenanceNs   int64   `json:"maintenance_ns"`
		ArtifactBytes   int64   `json:"artifact_bytes"`
		SnapshotBytes   int64   `json:"snapshot_bytes"`
		SnapshotRatio   float64 `json:"snapshot_compression_ratio"`
		PerScheme       map[string]struct {
			Queries   int64 `json:"queries"`
			Errors    int64 `json:"errors"`
			LatencyNs int64 `json:"latency_ns"`
		} `json:"per_scheme"`
		Envelope struct {
			InFlight         int64 `json:"in_flight"`
			MaxInFlight      int   `json:"max_in_flight"`
			MaxBodyBytes     int64 `json:"max_body_bytes"`
			MaxBatchQueries  int   `json:"max_batch_queries"`
			Rejected429      int64 `json:"rejected_429"`
			RejectedBody413  int64 `json:"rejected_body_413"`
			RejectedBatch413 int64 `json:"rejected_batch_413"`
			BudgetExceeded   int64 `json:"budget_exceeded"`
		} `json:"envelope"`
		Cache *struct {
			Hits        int64 `json:"hits"`
			Misses      int64 `json:"misses"`
			Coalesced   int64 `json:"coalesced"`
			Evictions   int64 `json:"evictions"`
			Entries     int64 `json:"entries"`
			Bytes       int64 `json:"bytes"`
			BudgetBytes int64 `json:"budget_bytes"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(rawStats, &stats); err != nil {
		t.Fatalf("stats response does not match the documented shape: %v", err)
	}
	if stats.Datasets != 2 || stats.PreprocessCalls != 3 || stats.Queries != 7 {
		t.Fatalf("stats counters diverge from the documented example: %+v", stats)
	}
	if stats.DeltasApplied != 3 || stats.MaintenanceNs <= 0 {
		t.Fatalf("maintenance counters diverge from the documented example: %+v", stats)
	}
	// The dynamism counters: of the three applied deltas exactly one was a
	// tombstone (patch-delete); this in-memory registry replayed no log.
	if stats.DeltasDeleted != 1 || stats.LogReplays != 0 {
		t.Fatalf("dynamism counters diverge from the documented example: %+v", stats)
	}
	// The artifact-size fields: both registered datasets are resident, so
	// the summed Π bytes and their would-be snapshot bytes are positive, and
	// the ratio is exactly their quotient (sorted-key artifacts ride the
	// delta-varint snapshot section, so the ratio sits below the raw
	// framing overhead would suggest).
	if stats.ArtifactBytes <= 0 || stats.SnapshotBytes <= 0 {
		t.Fatalf("artifact sizes diverge from the documented shape: %+v", stats)
	}
	if want := float64(stats.SnapshotBytes) / float64(stats.ArtifactBytes); stats.SnapshotRatio != want {
		t.Fatalf("snapshot_compression_ratio = %v, want %v", stats.SnapshotRatio, want)
	}
	ss, ok := stats.PerScheme["list-membership/sorted"]
	if !ok || ss.Queries != 7 || ss.Errors != 0 {
		t.Fatalf("per-scheme stats diverge from the documented example: %+v", stats.PerScheme)
	}
	// The cache counters: 6 distinct ⟨dataset, version, query⟩ keys missed
	// and were filled (q2@v0, q9@v0, q9@v1, q9@v2, and the two batch
	// queries on m2@v0); the repeated query-after-patch body hit.
	if stats.Cache == nil {
		t.Fatalf("stats response carries no cache block with the cache enabled")
	}
	if stats.Cache.Hits != 1 || stats.Cache.Misses != 6 || stats.Cache.Entries != 6 {
		t.Fatalf("cache counters diverge from the documented example: %+v", *stats.Cache)
	}
	if stats.Cache.BudgetBytes != 1<<20 || stats.Cache.Bytes <= 0 {
		t.Fatalf("cache residency diverges from the documented example: %+v", *stats.Cache)
	}
	// The envelope block: this server runs the default limits and nothing
	// above tripped them, so the documented example's values are exact.
	env := stats.Envelope
	if env.InFlight != 0 || env.MaxInFlight != 0 || env.MaxBodyBytes != 64<<20 || env.MaxBatchQueries != 4096 {
		t.Fatalf("envelope limits diverge from the documented example: %+v", env)
	}
	if env.Rejected429 != 0 || env.RejectedBody413 != 0 || env.RejectedBatch413 != 0 || env.BudgetExceeded != 0 {
		t.Fatalf("envelope rejections diverge from the documented example: %+v", env)
	}

	// The process-identity fields documented next to the counters.
	var identity struct {
		UptimeS float64 `json:"uptime_s"`
		Build   struct {
			GoVersion string `json:"go_version"`
		} `json:"build"`
	}
	if err := json.Unmarshal(rawStats, &identity); err != nil {
		t.Fatal(err)
	}
	if identity.UptimeS <= 0 || identity.Build.GoVersion == "" {
		t.Fatalf("uptime/build diverge from the documented shape: %+v", identity)
	}

	// The request-ID example: a client-supplied X-Request-ID is echoed in
	// the header and repeated in the error body, exactly as documented.
	wantIDBody := `{"error":"dataset \"ghost\" not registered","request_id":"doc-1"}`
	if !strings.Contains(doc, wantIDBody) {
		t.Errorf("docs/API.md does not contain the documented request-ID response body %s", wantIDBody)
	}
	idReq, err := http.NewRequest(http.MethodPatch, ts.URL+"/v1/datasets/ghost", strings.NewReader(`{"deltas":["ARI="]}`))
	if err != nil {
		t.Fatal(err)
	}
	idReq.Header.Set("X-Request-ID", "doc-1")
	idResp, err := client.Do(idReq)
	if err != nil {
		t.Fatal(err)
	}
	idBody, _ := io.ReadAll(idResp.Body)
	idResp.Body.Close()
	if idResp.StatusCode != http.StatusNotFound || strings.TrimSpace(string(idBody)) != wantIDBody {
		t.Fatalf("request-ID example diverged from docs/API.md:\n got: %d %s\nwant: 404 %s", idResp.StatusCode, idBody, wantIDBody)
	}
	if got := idResp.Header.Get("X-Request-ID"); got != "doc-1" {
		t.Fatalf("X-Request-ID header %q, want the echoed %q", got, "doc-1")
	}

	// /metrics: the documented content type, conformant exposition, and the
	// documented metric families.
	mResp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	exposition, _ := io.ReadAll(mResp.Body)
	mResp.Body.Close()
	if mResp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", mResp.StatusCode)
	}
	if ct := mResp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("GET /metrics content type %q diverges from the documented one", ct)
	}
	if err := pitract.CheckExposition(exposition); err != nil {
		t.Fatalf("GET /metrics is not conformant text exposition: %v", err)
	}
	for _, family := range []string{
		"pitract_stage_duration_seconds", "pitract_answer_duration_seconds",
		"pitract_requests_in_flight", "pitract_preprocess_total",
	} {
		if !strings.Contains(doc, family) {
			t.Errorf("docs/API.md does not document the metric family %s", family)
		}
		if !strings.Contains(string(exposition), family) {
			t.Errorf("GET /metrics does not expose the documented family %s", family)
		}
	}

	// Every endpoint the server registers must be documented.
	for _, endpoint := range []string{"/healthz", "/v1/datasets", "/v1/datasets/{id}", "/v1/query", "/v1/query/batch", "/v1/stats", "/metrics"} {
		if !strings.Contains(doc, endpoint) {
			t.Errorf("docs/API.md does not document %s", endpoint)
		}
	}
}

// TestAPIDocEnvelopeExamples replays the Serving-envelope section of
// docs/API.md against a server configured with the section's deliberately
// tiny limits. The catalog wraps list-membership/sorted so preprocessing
// reliably outruns a 1ms budget and one query can be parked in flight —
// that makes every documented 413/429/503 body deterministic.
func TestAPIDocEnvelopeExamples(t *testing.T) {
	docBytes, err := os.ReadFile("docs/API.md")
	if err != nil {
		t.Fatalf("docs/API.md missing: %v", err)
	}
	doc := string(docBytes)

	gate := make(chan struct{})
	entered := make(chan struct{}, 2)
	base := pitract.ServeCatalog()["list-membership/sorted"]
	slow := &pitract.Scheme{
		SchemeName: base.SchemeName,
		Preprocess: func(d []byte) ([]byte, error) {
			time.Sleep(50 * time.Millisecond)
			return base.Preprocess(d)
		},
		Answer: func(pd, q []byte) (bool, error) {
			if string(q) == "park" {
				entered <- struct{}{}
				<-gate
				return false, nil
			}
			return base.Answer(pd, q)
		},
	}
	catalog := pitract.ServeCatalog()
	catalog[slow.SchemeName] = slow

	srv := pitract.NewServer(pitract.NewStoreRegistry(""), catalog)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	// Runs before ts.Close (defers are LIFO): if an assertion fails while a
	// query is parked, releasing it keeps Close from waiting forever.
	defer close(gate)
	client := ts.Client()

	post := func(t *testing.T, path, body string) (*http.Response, string) {
		t.Helper()
		resp, err := client.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp, strings.TrimSpace(buf.String())
	}
	replay := func(t *testing.T, path, reqBody string, wantStatus int, wantBody string) *http.Response {
		t.Helper()
		if reqBody != "" && !strings.Contains(doc, reqBody) {
			t.Errorf("docs/API.md does not contain the documented request body %s", reqBody)
		}
		if !strings.Contains(doc, wantBody) {
			t.Errorf("docs/API.md does not contain the documented response body %s", wantBody)
		}
		resp, body := post(t, path, reqBody)
		if resp.StatusCode != wantStatus {
			t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, wantStatus, body)
		}
		if body != wantBody {
			t.Fatalf("live response diverged from docs/API.md:\n got: %s\nwant: %s", body, wantBody)
		}
		return resp
	}

	// The doc's envelope invocation: -max-body-bytes 128 -max-batch 2.
	srv.SetLimits(pitract.ServerLimits{MaxBodyBytes: 128, MaxBatchQueries: 2})
	replay(t, "/v1/datasets",
		`{"id":"big","scheme":"list-membership/sorted","data":"AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA"}`,
		http.StatusRequestEntityTooLarge,
		`{"error":"request body exceeds the 128-byte limit"}`)
	replay(t, "/v1/query/batch",
		`{"dataset":"m","queries":["goCAgICAgICAAQ==","iYCAgICAgICAAQ==","goCAgICAgICAAQ=="]}`,
		http.StatusRequestEntityTooLarge,
		`{"error":"batch of 3 queries exceeds the 2-query limit"}`)

	// -register-budget 1ms: the wrapped Preprocess sleeps 50ms, so the
	// budget reliably expires mid-build and the build is abandoned.
	srv.SetLimits(pitract.ServerLimits{RegisterBudget: time.Millisecond})
	replay(t, "/v1/datasets",
		`{"id":"slow","scheme":"list-membership/sorted","data":"AwIEBg=="}`,
		http.StatusServiceUnavailable,
		`{"error":"store: register \"slow\": request budget exceeded (context deadline exceeded)"}`)

	// -max-inflight 1, saturated by one parked query ("park" base64).
	srv.SetLimits(pitract.ServerLimits{MaxInFlight: 1})
	if _, body := post(t, "/v1/datasets", `{"id":"m","scheme":"list-membership/sorted","data":"AwIEBg=="}`); !strings.Contains(body, `"id":"m"`) {
		t.Fatalf("registering the demo dataset: %s", body)
	}
	parked := make(chan string, 1)
	go func() {
		_, body := post(t, "/v1/query", `{"dataset":"m","query":"cGFyaw=="}`)
		parked <- body
	}()
	<-entered
	resp := replay(t, "/v1/query", `{"dataset":"m","query":"goCAgICAgICAAQ=="}`,
		http.StatusTooManyRequests,
		`{"error":"server at capacity (1 in flight); retry after 1s"}`)
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After header %q, want %q", got, "1")
	}
	gate <- struct{}{}
	<-parked

	// -max-inflight-dataset 1: the dataset is named and other datasets
	// keep answering, exactly as the doc's prose quotes.
	srv.SetLimits(pitract.ServerLimits{MaxInFlightPerDataset: 1})
	go func() {
		_, body := post(t, "/v1/query", `{"dataset":"m","query":"cGFyaw=="}`)
		parked <- body
	}()
	<-entered
	wantPerDS := `dataset "m" at capacity (1 in flight)`
	if !strings.Contains(doc, wantPerDS) {
		t.Errorf("docs/API.md does not quote the per-dataset rejection %s", wantPerDS)
	}
	resp, body := post(t, "/v1/query", `{"dataset":"m","query":"goCAgICAgICAAQ=="}`)
	// On the wire the quotes around the dataset id are JSON-escaped.
	if resp.StatusCode != http.StatusTooManyRequests || !strings.Contains(body, `dataset \"m\" at capacity (1 in flight)`) {
		t.Fatalf("per-dataset rejection: status %d body %s", resp.StatusCode, body)
	}
	gate <- struct{}{}
	<-parked
}
