package pitract_test

// Documentation verification. docs/ARCHITECTURE.md points into the code
// and docs/API.md quotes wire examples; both claims are cheap to break
// silently, so these tests pin them: every repository path the
// architecture doc references must exist, and every API example must be
// reproduced character-for-character by a live test server.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"testing"

	"pitract"
)

// repoPathPattern matches repository-relative code pointers in prose:
// package directories and files under internal/, cmd/, examples/, docs/,
// plus the root facade and this test file.
var repoPathPattern = regexp.MustCompile(`(?:internal|cmd|examples|docs)/[A-Za-z0-9_./-]+[A-Za-z0-9_-]|pitract\.go|docs_test\.go|README\.md|ROADMAP\.md`)

// TestArchitectureDocPathsExist keeps docs/ARCHITECTURE.md's code
// pointers honest: every referenced path must exist in the repository.
func TestArchitectureDocPathsExist(t *testing.T) {
	for _, docFile := range []string{"docs/ARCHITECTURE.md", "docs/API.md", "README.md"} {
		doc, err := os.ReadFile(docFile)
		if err != nil {
			t.Fatalf("%s missing: %v", docFile, err)
		}
		refs := repoPathPattern.FindAllString(string(doc), -1)
		if len(refs) == 0 {
			t.Fatalf("%s references no code paths — the pattern or the doc is broken", docFile)
		}
		seen := map[string]bool{}
		for _, ref := range refs {
			if seen[ref] {
				continue
			}
			seen[ref] = true
			if _, err := os.Stat(ref); err != nil {
				t.Errorf("%s references %q, which does not exist", docFile, ref)
			}
		}
	}
}

// apiExample is one request/response pair quoted in docs/API.md.
type apiExample struct {
	name       string
	method     string
	path       string
	reqBody    string // also asserted to appear verbatim in the doc
	wantStatus int
	wantBody   string // exact response body; also asserted in the doc
}

// apiExamples mirrors docs/API.md example for example; changing either
// side without the other fails TestAPIDocMatchesServer.
var apiExamples = []apiExample{
	{
		name:       "register",
		method:     http.MethodPost,
		path:       "/v1/datasets",
		reqBody:    `{"id":"m","scheme":"list-membership/sorted","data":"AwIEBg=="}`,
		wantStatus: http.StatusOK,
		wantBody:   `{"id":"m","scheme":"list-membership/sorted","prep_bytes":24,"loaded":false,"shards":1,"version":0}`,
	},
	{
		name:       "register-sharded",
		method:     http.MethodPost,
		path:       "/v1/datasets?shards=2&partitioner=hash",
		reqBody:    `{"id":"m2","scheme":"list-membership/sorted","data":"AwIEBg=="}`,
		wantStatus: http.StatusOK,
		wantBody:   `{"id":"m2","scheme":"list-membership/sorted","prep_bytes":24,"loaded":false,"shards":2,"version":0}`,
	},
	{
		name:       "register-hostile-409",
		method:     http.MethodPost,
		path:       "/v1/datasets",
		reqBody:    `{"id":"bad","scheme":"reachability/closure-matrix","data":"////"}`,
		wantStatus: http.StatusConflict,
		wantBody:   `{"error":"store: register \"bad\": preprocess (reachability/closure-matrix): graph: corrupt varint at offset 0"}`,
	},
	{
		name:       "healthz",
		method:     http.MethodGet,
		path:       "/healthz",
		wantStatus: http.StatusOK,
		wantBody:   `{"datasets":2,"status":"ok"}`,
	},
	{
		name:       "list",
		method:     http.MethodGet,
		path:       "/v1/datasets",
		wantStatus: http.StatusOK,
		wantBody:   `{"datasets":[{"id":"m","scheme":"list-membership/sorted","prep_bytes":24,"loaded":false,"shards":1,"version":0},{"id":"m2","scheme":"list-membership/sorted","prep_bytes":24,"loaded":false,"shards":2,"version":0}]}`,
	},
	{
		name:       "query",
		method:     http.MethodPost,
		path:       "/v1/query",
		reqBody:    `{"dataset":"m","query":"goCAgICAgICAAQ=="}`,
		wantStatus: http.StatusOK,
		wantBody:   `{"answer":true,"version":0}`,
	},
	{
		name:       "query-before-patch",
		method:     http.MethodPost,
		path:       "/v1/query",
		reqBody:    `{"dataset":"m","query":"iYCAgICAgICAAQ=="}`,
		wantStatus: http.StatusOK,
		wantBody:   `{"answer":false,"version":0}`,
	},
	{
		name:       "patch",
		method:     http.MethodPatch,
		path:       "/v1/datasets/m",
		reqBody:    `{"deltas":["ARI="]}`,
		wantStatus: http.StatusOK,
		wantBody:   `{"id":"m","scheme":"list-membership/sorted","prep_bytes":32,"loaded":false,"shards":1,"version":1}`,
	},
	{
		name:       "query-after-patch",
		method:     http.MethodPost,
		path:       "/v1/query",
		reqBody:    `{"dataset":"m","query":"iYCAgICAgICAAQ=="}`,
		wantStatus: http.StatusOK,
		wantBody:   `{"answer":true,"version":1}`,
	},
	{
		// The identical query again: with the answer cache enabled this is
		// served as a ⟨dataset, version, query⟩ hit — same bytes on the
		// wire, and the /v1/stats check below sees exactly one cache hit.
		name:       "query-repeat-cached",
		method:     http.MethodPost,
		path:       "/v1/query",
		reqBody:    `{"dataset":"m","query":"iYCAgICAgICAAQ=="}`,
		wantStatus: http.StatusOK,
		wantBody:   `{"answer":true,"version":1}`,
	},
	{
		name:       "get-dataset",
		method:     http.MethodGet,
		path:       "/v1/datasets/m",
		wantStatus: http.StatusOK,
		wantBody:   `{"id":"m","scheme":"list-membership/sorted","prep_bytes":32,"loaded":false,"shards":1,"version":1}`,
	},
	{
		name:       "patch-hostile-409",
		method:     http.MethodPatch,
		path:       "/v1/datasets/m",
		reqBody:    `{"deltas":["////"]}`,
		wantStatus: http.StatusConflict,
		wantBody:   `{"error":"store: apply delta to \"m\": store: delta 0: schemes: corrupt list header (nothing applied)"}`,
	},
	{
		name:       "patch-unknown-404",
		method:     http.MethodPatch,
		path:       "/v1/datasets/ghost",
		reqBody:    `{"deltas":["ARI="]}`,
		wantStatus: http.StatusNotFound,
		wantBody:   `{"error":"dataset \"ghost\" not registered"}`,
	},
	{
		name:       "batch",
		method:     http.MethodPost,
		path:       "/v1/query/batch",
		reqBody:    `{"dataset":"m2","queries":["goCAgICAgICAAQ==","iYCAgICAgICAAQ=="],"parallelism":2}`,
		wantStatus: http.StatusOK,
		wantBody:   `{"answers":[true,false],"version":0}`,
	},
}

// TestAPIDocMatchesServer replays every docs/API.md example against a
// live httptest server: the documented request bodies must appear in the
// doc verbatim, and the server's responses must match the documented
// bodies and status codes exactly. /v1/stats is verified structurally
// (its counters carry timings).
func TestAPIDocMatchesServer(t *testing.T) {
	docBytes, err := os.ReadFile("docs/API.md")
	if err != nil {
		t.Fatalf("docs/API.md missing: %v", err)
	}
	doc := string(docBytes)

	srv := pitract.NewServer(pitract.NewStoreRegistry(""), nil)
	// The cache is on, as in the documented serve invocation
	// (-cache-bytes), so the stats check covers the cache counters.
	srv.SetAnswerCache(pitract.NewAnswerCache(1 << 20))
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	for _, ex := range apiExamples {
		t.Run(ex.name, func(t *testing.T) {
			if ex.reqBody != "" && !strings.Contains(doc, ex.reqBody) {
				t.Errorf("docs/API.md does not contain the documented request body %s", ex.reqBody)
			}
			if !strings.Contains(doc, ex.wantBody) {
				t.Errorf("docs/API.md does not contain the documented response body %s", ex.wantBody)
			}
			req, err := http.NewRequest(ex.method, ts.URL+ex.path, strings.NewReader(ex.reqBody))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := client.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(resp.Body); err != nil {
				t.Fatal(err)
			}
			body := strings.TrimSpace(buf.String())
			if resp.StatusCode != ex.wantStatus {
				t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, ex.wantStatus, body)
			}
			if body != ex.wantBody {
				t.Fatalf("live response diverged from docs/API.md:\n got: %s\nwant: %s", body, ex.wantBody)
			}
		})
	}

	// /v1/stats: counters carry latencies, so pin the shape and the
	// deterministic values instead of bytes.
	resp, err := client.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Datasets        int   `json:"datasets"`
		PreprocessCalls int64 `json:"preprocess_calls"`
		SnapshotLoads   int64 `json:"snapshot_loads"`
		Queries         int64 `json:"queries"`
		DeltasApplied   int64 `json:"deltas_applied"`
		MaintenanceNs   int64 `json:"maintenance_ns"`
		PerScheme       map[string]struct {
			Queries   int64 `json:"queries"`
			Errors    int64 `json:"errors"`
			LatencyNs int64 `json:"latency_ns"`
		} `json:"per_scheme"`
		Cache *struct {
			Hits        int64 `json:"hits"`
			Misses      int64 `json:"misses"`
			Coalesced   int64 `json:"coalesced"`
			Evictions   int64 `json:"evictions"`
			Entries     int64 `json:"entries"`
			Bytes       int64 `json:"bytes"`
			BudgetBytes int64 `json:"budget_bytes"`
		} `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("stats response does not match the documented shape: %v", err)
	}
	if stats.Datasets != 2 || stats.PreprocessCalls != 3 || stats.Queries != 6 {
		t.Fatalf("stats counters diverge from the documented example: %+v", stats)
	}
	if stats.DeltasApplied != 1 || stats.MaintenanceNs <= 0 {
		t.Fatalf("maintenance counters diverge from the documented example: %+v", stats)
	}
	ss, ok := stats.PerScheme["list-membership/sorted"]
	if !ok || ss.Queries != 6 || ss.Errors != 0 {
		t.Fatalf("per-scheme stats diverge from the documented example: %+v", stats.PerScheme)
	}
	// The cache counters: 5 distinct ⟨dataset, version, query⟩ keys missed
	// and were filled (q2@v0, q9@v0, q9@v1, and the two batch queries on
	// m2@v0); the repeated query-after-patch body hit.
	if stats.Cache == nil {
		t.Fatalf("stats response carries no cache block with the cache enabled")
	}
	if stats.Cache.Hits != 1 || stats.Cache.Misses != 5 || stats.Cache.Entries != 5 {
		t.Fatalf("cache counters diverge from the documented example: %+v", *stats.Cache)
	}
	if stats.Cache.BudgetBytes != 1<<20 || stats.Cache.Bytes <= 0 {
		t.Fatalf("cache residency diverges from the documented example: %+v", *stats.Cache)
	}

	// Every endpoint the server registers must be documented.
	for _, endpoint := range []string{"/healthz", "/v1/datasets", "/v1/datasets/{id}", "/v1/query", "/v1/query/batch", "/v1/stats"} {
		if !strings.Contains(doc, endpoint) {
			t.Errorf("docs/API.md does not document %s", endpoint)
		}
	}
}
